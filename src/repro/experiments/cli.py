"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``figures``
    Regenerate paper tables/figures (same registry as the bench harness)
    and print them as aligned tables; optionally write CSVs.
``run``
    Run a single experiment specified by flags and print its summary.
``inspect``
    Print the structural and timing properties of a broadcast program
    (period, utilisation, per-disk inter-arrivals, delay quantiles).
``policies``
    List the available cache replacement policies.
``population``
    Simulate a declarative client fleet (:mod:`repro.population`) —
    either the built-in demo fleet or a ``--spec`` JSON file — and
    print the overall and per-segment rollups.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, List, Optional, Tuple

from repro.cache.registry import available_policies
from repro.core.disks import DiskLayout
from repro.core.programs import _multidisk_program
from repro.experiments import figures
from repro.experiments.config import ExperimentConfig
from repro.experiments.engines import plan_engine_names
from repro.experiments.reporting import format_table, write_csv
from repro.experiments.runner import run_experiment
from repro.errors import ReproError

def _hybrid_study_entry():
    """Hybrid push/pull population scaling (see repro.hybrid)."""
    from repro.hybrid.study import hybrid_population_study

    return hybrid_population_study(
        populations=(1, 8, 32, 128), requests_per_client=150, pull_spacing=2
    )


#: artifact name -> (callable, accepts num_requests/seed kwargs,
#: accepts jobs/engine kwargs)
ARTIFACTS: Dict[str, Tuple] = {
    "table1": (figures.table1, False, False),
    "fig5": (figures.figure5, True, True),
    "fig6": (figures.figure6, True, True),
    "fig7": (figures.figure7, True, True),
    "fig8": (figures.figure8, True, True),
    "fig9": (figures.figure9, True, True),
    "fig10": (figures.figure10, True, True),
    "fig11": (figures.figure11, True, True),
    "fig13": (figures.figure13, True, True),
    "fig14": (figures.figure14, True, True),
    "fig15": (figures.figure15, True, True),
    "busstop": (figures.bus_stop_paradox, False, False),
    "shaping": (figures.shaping_ablation, True, False),
    "prefetch": (figures.prefetch_comparison, True, False),
    "zoo": (figures.policy_zoo, True, False),
    "indexing": (figures.indexing_tradeoff, False, False),
    "indexed-multidisk": (figures.indexed_multidisk_study, False, False),
    "volatility": (figures.volatility_study, True, False),
    "drift": (figures.drift_study, True, False),
    "query": (figures.query_study, False, False),
    "multichannel": (figures.multichannel_study, True, True),
    "hybrid": (_hybrid_study_entry, False, False),
}


def _parse_sizes(text: str) -> Tuple[int, ...]:
    try:
        sizes = tuple(int(part) for part in text.split(","))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"disk sizes must be comma-separated integers, got {text!r}"
        )
    if not sizes:
        raise argparse.ArgumentTypeError("need at least one disk size")
    return sizes


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Broadcast Disks (SIGMOD '95) reproduction toolkit.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    figures_cmd = commands.add_parser(
        "figures", help="regenerate paper tables/figures"
    )
    figures_cmd.add_argument(
        "artifacts", nargs="+",
        help=f"artifacts to run ({', '.join(ARTIFACTS)}, or 'all')",
    )
    figures_cmd.add_argument("--requests", type=int, default=None)
    figures_cmd.add_argument("--seed", type=int, default=42)
    figures_cmd.add_argument("--csv-dir", default=None)
    figures_cmd.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes per sweep (results identical at any count)",
    )
    figures_cmd.add_argument(
        "--engine", default="fast", choices=list(plan_engine_names()),
        help="simulation engine for the paper-figure sweeps",
    )
    figures_cmd.add_argument(
        "--profile", action="store_true",
        help="profile the sweeps (phase timings, engine counters, "
             "timing-tier dispatch counts); forces serial execution",
    )

    run_cmd = commands.add_parser("run", help="run one experiment")
    run_cmd.add_argument("--disks", type=_parse_sizes, default=(500, 2000, 2500),
                         help="comma-separated disk sizes (default D5)")
    run_cmd.add_argument("--delta", type=int, default=3)
    run_cmd.add_argument("--cache", type=int, default=1)
    run_cmd.add_argument("--policy", default="LRU",
                         choices=[*available_policies(), "lru2"])
    run_cmd.add_argument("--noise", type=float, default=0.0)
    run_cmd.add_argument("--offset", type=int, default=0)
    run_cmd.add_argument("--requests", type=int, default=15_000)
    run_cmd.add_argument("--access-range", type=int, default=1000)
    run_cmd.add_argument("--region-size", type=int, default=50)
    run_cmd.add_argument("--theta", type=float, default=0.95)
    run_cmd.add_argument("--seed", type=int, default=42)
    run_cmd.add_argument("--engine", default="fast",
                         choices=list(plan_engine_names()))
    run_cmd.add_argument(
        "--profile", action="store_true",
        help="print the run's profile (phase timings, engine counters, "
             "timing-tier dispatch counts)",
    )

    inspect_cmd = commands.add_parser(
        "inspect", help="show a broadcast program's properties"
    )
    inspect_cmd.add_argument("--disks", type=_parse_sizes, required=True)
    inspect_cmd.add_argument("--delta", type=int, default=1)

    commands.add_parser("policies", help="list cache policies")

    population_cmd = commands.add_parser(
        "population", help="simulate a declarative client fleet"
    )
    population_cmd.add_argument(
        "--spec", default=None,
        help="JSON fleet spec (see docs/POPULATION.md); "
             "default: a built-in demo fleet",
    )
    population_cmd.add_argument(
        "--clients", type=int, default=None,
        help="scale the fleet to this many clients "
             "(proportional across segments)",
    )
    population_cmd.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (results identical at any count)",
    )
    population_cmd.add_argument("--seed", type=int, default=None,
                                help="override the spec's seed")
    population_cmd.add_argument(
        "--engine", default=None, choices=list(plan_engine_names()),
        help="override the spec's engine",
    )
    population_cmd.add_argument("--manifest", default=None,
                                help="write the population manifest here")
    population_cmd.add_argument(
        "--checkpoint", default=None,
        help="JSONL journal; an interrupted fleet resumes client-by-client",
    )
    population_cmd.add_argument(
        "--profile", action="store_true",
        help="profile the fleet run; forces serial execution",
    )
    return parser


def _make_profiler(args):
    """A Profiler when ``--profile`` was given, else None."""
    if not getattr(args, "profile", False):
        return None
    from repro.obs.profile import Profiler

    return Profiler()


def _command_figures(args) -> int:
    names = list(ARTIFACTS) if args.artifacts == ["all"] else args.artifacts
    unknown = [name for name in names if name not in ARTIFACTS]
    if unknown:
        print(f"unknown artifacts: {', '.join(unknown)}", file=sys.stderr)
        return 2
    if args.csv_dir:
        os.makedirs(args.csv_dir, exist_ok=True)
    profiler = _make_profiler(args)
    for name in names:
        builder, scalable, parallel = ARTIFACTS[name]
        kwargs = {}
        if scalable:
            kwargs["seed"] = args.seed
            if args.requests is not None:
                kwargs["num_requests"] = args.requests
        if parallel:
            kwargs["jobs"] = args.jobs
            kwargs["engine"] = args.engine
            if profiler is not None:
                kwargs["profile"] = profiler
        elif profiler is not None:
            print(f"note: {name} does not support --profile; "
                  "profiling the sweep-based artifacts only")
        data = builder(**kwargs)
        print(format_table(data))
        if args.csv_dir:
            path = os.path.join(args.csv_dir, f"{name}.csv")
            write_csv(data, path)
            print(f"wrote {path}\n")
    if profiler is not None:
        print(profiler.report())
    return 0


def _command_run(args) -> int:
    config = ExperimentConfig(
        disk_sizes=args.disks,
        delta=args.delta,
        cache_size=args.cache,
        policy=args.policy,
        noise=args.noise,
        offset=args.offset,
        num_requests=args.requests,
        access_range=args.access_range,
        region_size=args.region_size,
        theta=args.theta,
        seed=args.seed,
    )
    profiler = _make_profiler(args)
    result = run_experiment(config, engine=args.engine, profile=profiler)
    print(result.summary())
    print(f"  measured requests : {result.measured_requests}")
    print(f"  warm-up requests  : {result.warmup_requests}")
    print(f"  response stddev   : {result.response_stats.stddev:.1f} bu")
    locations = ", ".join(
        f"{place}={value:.1%}"
        for place, value in result.access_locations.items()
    )
    print(f"  access locations  : {locations}")
    print(f"  wall time         : {result.wall_seconds:.2f} s")
    if profiler is not None:
        print(profiler.report())
    return 0


def _command_inspect(args) -> int:
    from repro.core.validate import validate_program

    layout = DiskLayout.from_delta(args.disks, args.delta)
    program = _multidisk_program(layout)
    print(f"layout        : {layout.describe()} (delta={args.delta})")
    print(f"period        : {program.period} broadcast units")
    print(f"padding slots : {program.empty_slots} "
          f"({program.empty_slots / program.period:.2%})")
    shares = layout.bandwidth_shares()
    for disk in range(layout.num_disks):
        page = layout.pages_on_disk(disk)[0]
        gap = int(program.gaps(page)[0])
        print(
            f"disk {disk + 1}: {layout.sizes[disk]} pages @ rel_freq "
            f"{layout.rel_freqs[disk]}  share={shares[disk]:.1%}  "
            f"inter-arrival={gap}  E[wait]={program.expected_delay(page):.1f}  "
            f"p90={program.delay_quantile(page, 0.9):.1f}"
        )
    print("audit (§2.1 desiderata):")
    for line in validate_program(program).summary().splitlines():
        print(f"  {line}")
    return 0


def _demo_population_spec():
    """The built-in demo fleet: a small heterogeneous three-segment mix."""
    from repro.population import (
        Choice, PopulationSpec, SegmentSpec, Uniform, UniformInt,
    )

    base = ExperimentConfig(
        disk_sizes=(300, 1200, 3500),  # the paper's D4
        delta=3,
        cache_size=500,
        policy="LIX",
        num_requests=2_000,
    )
    return PopulationSpec(
        name="demo-fleet",
        base=base,
        seed=42,
        segments=(
            SegmentSpec(
                "commuters", 12,
                cache_size=UniformInt(100, 500),
                noise=Uniform(0.0, 0.3),
                policy=Choice(("LRU", "LIX")),
            ),
            SegmentSpec(
                "dashboards", 6,
                think_time=Uniform(0.0, 1.0),
                offset=UniformInt(0, 500),
            ),
            SegmentSpec(
                "drifters", 6,
                drift_rotations=Uniform(0.0, 2.0),
            ),
        ),
    )


def _command_population(args) -> int:
    import json
    from dataclasses import replace

    from repro.exec.checkpoint import SweepCheckpoint
    from repro.population import run_population, scale_spec, spec_from_dict

    if args.spec is not None:
        with open(args.spec) as handle:
            spec = spec_from_dict(json.load(handle))
    else:
        spec = _demo_population_spec()
    if args.seed is not None:
        spec = replace(spec, seed=args.seed)
    if args.engine is not None:
        spec = replace(spec, engine=args.engine)
    if args.clients is not None:
        spec = scale_spec(spec, args.clients)

    checkpoint = (
        SweepCheckpoint(args.checkpoint) if args.checkpoint else None
    )
    if checkpoint is not None and checkpoint.resumed:
        print(f"checkpoint: resuming past {checkpoint.resumed} "
              f"journalled clients")
    profiler = _make_profiler(args)
    result = run_population(
        spec,
        jobs=args.jobs,
        checkpoint=checkpoint,
        manifest=args.manifest,
        profile=profiler,
    )
    print(result.summary())
    header = (
        f"  {'segment':<14} {'clients':>7} {'mean':>8} {'p50':>8} "
        f"{'p90':>8} {'p99':>8} {'fairness':>8} {'hit rate':>8}"
    )
    print(header)
    rows = [("overall", result.overall)] + list(result.segments.items())
    for name, aggregate in rows:
        snap = aggregate.snapshot()
        print(
            f"  {name:<14} {snap['clients']:>7} "
            f"{snap['response_mean']['mean']:>8.1f} "
            f"{snap['percentiles']['p50']:>8.1f} "
            f"{snap['percentiles']['p90']:>8.1f} "
            f"{snap['percentiles']['p99']:>8.1f} "
            f"{snap['fairness']:>8.3f} "
            f"{snap['hit_rate']:>8.1%}"
        )
    if args.manifest:
        print(f"wrote {args.manifest}")
    if profiler is not None:
        print(profiler.report())
    return 0


def _command_policies(_args) -> int:
    print("available cache replacement policies:")
    descriptions = {
        "P": "idealised: evict the lowest access probability",
        "PIX": "idealised cost-based: evict the lowest probability/frequency",
        "LRU": "least recently used",
        "L": "LIX without the frequency term (implementable P analogue)",
        "LIX": "per-disk LRU chains, estimate/frequency eviction (§5.5)",
        "LRU-K": "[ONei93] backward K-distance (extension baseline)",
        "2Q": "[John94] A1in/A1out/Am (extension baseline)",
    }
    for name in available_policies():
        print(f"  {name:<6} {descriptions.get(name, '')}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handler = {
        "figures": _command_figures,
        "run": _command_run,
        "inspect": _command_inspect,
        "policies": _command_policies,
        "population": _command_population,
    }[args.command]
    try:
        return handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
