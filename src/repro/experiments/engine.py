"""The fast analytic-stepping simulation engine.

Because the §2.2 program gives every page a *fixed* inter-arrival time,
the wait a cache miss experiences is fully determined by the request
instant: ``next_completion(page, t) - t``.  The engine therefore
advances directly from request to request instead of ticking through
broadcast slots, which is what makes full paper-scale parameter sweeps
(48 design points x 15,000 measured requests each) practical in pure
Python.

The inner loop is written to be allocation-free (see
``docs/PERFORMANCE.md``):

* the trace is materialised once as a plain python list, so the loop
  never boxes ``np.int64`` scalars;
* every attribute lookup (cache protocol methods, stats accumulators,
  the schedule's tables) is hoisted to a local before the loop;
* the warm-up and measured phases run as two separate loops, so the
  per-request ``warming`` branching disappears entirely;
* waits come from the schedule's precomputed timing structures: the
  §2.1 fixed-inter-arrival property in closed form
  (:meth:`repro.core.schedule.BroadcastSchedule.fixed_gap` — two
  integer ops per miss, inlined below) for every page of a §2.2
  program, with a transparent fallback to ``next_arrival`` (wait table
  or bisection) for irregular schedules;
* tracing runs in a separate loop (:meth:`FastEngine._run_trace_traced`)
  so the hot path carries no tracer branches; the traced loop is also
  the *reference loop* (:meth:`FastEngine.run_trace_reference`) that the
  perf gate and the equivalence tests compare against.

The engine is semantically identical to the process-oriented engine in
:mod:`repro.experiments.simengine` — the test suite feeds both the same
trace and asserts per-request equality — but is the default for all
figure reproductions.

Measurement protocol (§5): response times are recorded only once the
cache has filled ("the cache warm-up effects were eliminated by
beginning our measurements only after the cache was full"), after which
``num_requests`` requests are measured.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cache.base import CacheCounters, CachePolicy
from repro.core.disks import DiskLayout
from repro.core.schedule import BroadcastProgram, BroadcastSchedule
from repro.errors import ConfigurationError
from repro.sim.stats import RunningStats
from repro.workload.mapping import LogicalPhysicalMapping
from repro.workload.trace import RequestTrace


@dataclass
class EngineOutcome:
    """Raw measurements from one engine run."""

    response: RunningStats
    counters: CacheCounters
    measured_requests: int
    warmup_requests: int
    final_time: float
    #: Per-request response times of the measured phase; populated only
    #: when the engine ran with ``collect_responses=True``.
    samples: Optional[list] = None
    #: Channel switches during the measured phase (always 0 on a
    #: single-channel schedule — there is nothing to switch to).
    retunes: int = 0

    @property
    def mean_response_time(self) -> float:
        """Mean response time over the measured phase, in broadcast units."""
        return self.response.mean


class FastEngine:
    """Request-to-request stepping over a periodic broadcast schedule."""

    def __init__(
        self,
        schedule: BroadcastSchedule,
        mapping: LogicalPhysicalMapping,
        layout: DiskLayout,
        cache: CachePolicy,
        think_time: float,
        tracer=None,
        profile=None,
        *,
        retune_cost: float = 1.0,
    ):
        if think_time < 0:
            raise ConfigurationError(f"think_time must be >= 0, got {think_time}")
        if retune_cost < 0:
            raise ConfigurationError(
                f"retune_cost must be >= 0, got {retune_cost}"
            )
        self.schedule = schedule
        #: Set when ``schedule`` is a multi-channel
        #: :class:`~repro.core.schedule.BroadcastProgram`; such runs take
        #: the tuner-aware loop (:meth:`_run_trace_multichannel`) and the
        #: single-channel hot path below is never entered.
        self.program = schedule if isinstance(schedule, BroadcastProgram) else None
        self.retune_cost = retune_cost
        self.mapping = mapping
        self.layout = layout
        self.cache = cache
        self.think_time = think_time
        self.now = 0.0
        #: Optional :class:`repro.obs.trace.Tracer` emitting the same
        #: ``client.*`` records as the process engine's client; ``None``
        #: (the default) adds nothing to the hot loop — the traced run
        #: takes a separate code path entirely.
        self.tracer = tracer
        #: Optional :class:`repro.obs.profile.Profiler`.  An enabled
        #: profiler routes :meth:`run_trace` through the general loop so
        #: every miss dispatches through ``schedule.next_arrival`` and is
        #: tier-attributed; the allocation-free hot path stays free of
        #: profiling branches entirely.
        self.profile = profile

    def run_trace(
        self,
        trace: RequestTrace,
        warmup_requests: Optional[int] = None,
        collect_responses: bool = False,
        extra_warmup: int = 0,
    ) -> EngineOutcome:
        """Run the full trace; measure once warm-up ends.

        The default warm-up rule is the paper's §5 protocol: wait until
        the cache is full, then (to measure *steady state*, not the
        cache-convergence transient) keep warming for ``extra_warmup``
        further requests.  ``warmup_requests`` overrides both with a
        fixed request count.  With ``collect_responses`` the per-request
        response times of the measured phase are retained on the outcome
        (``outcome.samples``) for engine cross-validation.
        """
        tracer = self.tracer
        if tracer is not None and not tracer.enabled:
            tracer = None
        if self.program is not None:
            profile = self.profile
            return self._run_trace_multichannel(
                trace,
                warmup_requests=warmup_requests,
                collect_responses=collect_responses,
                extra_warmup=extra_warmup,
                tracer=tracer,
                dispatch_arithmetic=(
                    profile is not None and profile.enabled
                ),
            )
        if tracer is not None:
            return self._run_trace_traced(
                trace,
                warmup_requests=warmup_requests,
                collect_responses=collect_responses,
                extra_warmup=extra_warmup,
                tracer=tracer,
            )
        profile = self.profile
        if profile is not None and profile.enabled:
            # Profiled runs take the general loop too: its misses all
            # dispatch through ``schedule.next_arrival`` and are counted
            # per timing tier, where the hot loop below inlines the
            # closed form and would under-attribute.  The equivalence
            # tests hold the two loops byte-identical, so profiling
            # never changes measurements — only wall time.
            return self._run_trace_traced(
                trace,
                warmup_requests=warmup_requests,
                collect_responses=collect_responses,
                extra_warmup=extra_warmup,
                tracer=None,
            )

        schedule = self.schedule
        cache = self.cache
        think = self.think_time

        # Hoist every per-request attribute lookup out of the loops.
        cache_lookup = cache.lookup
        cache_admit = cache.admit
        to_physical = self.mapping.to_physical
        disk_of_physical = self.layout.disk_of_page
        next_arrival = schedule.next_arrival
        fixed_gap = schedule.fixed_gap

        response = RunningStats()
        counters = CacheCounters()
        response_add = response.add
        record_hit = counters.record_hit
        record_miss = counters.record_miss
        samples: Optional[List[float]] = [] if collect_responses else None

        # One plain-python materialisation of the trace: list indexing
        # returns cached ints instead of boxing an np.int64 per request.
        pages = trace.pages.tolist()
        total = len(pages)
        now = self.now

        # Per-run cache of each physical page's (residue, gap) pair —
        # the §2.1 fixed-inter-arrival property in closed form, so a
        # miss costs one dict probe and two integer ops.  ``False``
        # marks irregular pages, which go through
        # ``schedule.next_arrival`` (wait table or bisection).
        gaps: Dict[int, object] = {}
        gaps_get = gaps.get
        # Same trick for the miss counters' disk attribution:
        # ``disk_of_page`` bounds-checks and scans the disk sizes on
        # every call, but a page's disk never changes.
        disks: Dict[int, int] = {}
        disks_get = disks.get

        # ---- warm-up phase -------------------------------------------------
        # Measurement starts after ``warmup_requests`` requests when
        # given, else once the cache is full plus ``extra_warmup`` more.
        limit = total if warmup_requests is None else min(warmup_requests, total)
        extra_left = extra_warmup
        index = 0
        while index < limit:
            if warmup_requests is None and cache.is_full:
                if extra_left <= 0:
                    break
                extra_left -= 1
            page = pages[index]
            index += 1
            now += think
            if cache_lookup(page, now):
                continue
            physical = to_physical(page)
            entry = gaps_get(physical)
            if entry is None:
                entry = fixed_gap(physical)
                gaps[physical] = entry if entry is not None else False
            if entry:
                residue, gap = entry
                base = int(now) + 1
                now = float(base + (residue - base) % gap)
            else:
                now = next_arrival(physical, now)
            cache_admit(page, now)
        warmup_seen = index

        # ---- measured phase ------------------------------------------------
        for index in range(warmup_seen, total):
            page = pages[index]
            now += think
            if cache_lookup(page, now):
                response_add(0.0)
                record_hit()
                if samples is not None:
                    samples.append(0.0)
                continue
            physical = to_physical(page)
            entry = gaps_get(physical)
            if entry is None:
                entry = fixed_gap(physical)
                gaps[physical] = entry if entry is not None else False
            if entry:
                residue, gap = entry
                base = int(now) + 1
                arrival = float(base + (residue - base) % gap)
            else:
                arrival = next_arrival(physical, now)
            wait = arrival - now
            now = arrival
            cache_admit(page, now)
            response_add(wait)
            disk = disks_get(physical)
            if disk is None:
                disk = disk_of_physical(physical)
                disks[physical] = disk
            record_miss(disk)
            if samples is not None:
                samples.append(wait)

        self.now = now
        return EngineOutcome(
            response=response,
            counters=counters,
            measured_requests=response.count,
            warmup_requests=warmup_seen,
            final_time=now,
            samples=samples,
        )

    def run_trace_reference(
        self,
        trace: RequestTrace,
        warmup_requests: Optional[int] = None,
        collect_responses: bool = False,
        extra_warmup: int = 0,
    ) -> EngineOutcome:
        """The pre-optimisation loop, kept verbatim as the golden model.

        One request at a time through the single general-purpose loop,
        waits from :meth:`~repro.core.schedule.BroadcastSchedule.
        next_arrival_bisect`.  ``benchmarks/bench_engine.py`` and the
        equivalence tests run this against :meth:`run_trace` and demand
        byte-identical measurements; it is registered as the
        ``fast-reference`` engine for plan-level comparisons.
        """
        tracer = self.tracer
        if tracer is not None and not tracer.enabled:
            tracer = None
        if self.program is not None:
            return self._run_trace_multichannel(
                trace,
                warmup_requests=warmup_requests,
                collect_responses=collect_responses,
                extra_warmup=extra_warmup,
                tracer=tracer,
                reference_arithmetic=True,
            )
        return self._run_trace_traced(
            trace,
            warmup_requests=warmup_requests,
            collect_responses=collect_responses,
            extra_warmup=extra_warmup,
            tracer=tracer,
            reference_arithmetic=True,
        )

    def _run_trace_traced(
        self,
        trace: RequestTrace,
        *,
        warmup_requests: Optional[int],
        collect_responses: bool,
        extra_warmup: int,
        tracer,
        reference_arithmetic: bool = False,
    ) -> EngineOutcome:
        """The general-purpose loop: tracing hooks, one request at a time.

        Used for traced runs (where per-request emit calls dominate
        anyway) and, with ``reference_arithmetic=True``, as the frozen
        reference implementation for the perf gate.
        """
        schedule = self.schedule
        mapping = self.mapping
        cache = self.cache
        think = self.think_time
        disk_of_physical = self.layout.disk_of_page
        next_arrival = (
            schedule.next_arrival_bisect
            if reference_arithmetic
            else schedule.next_arrival
        )

        response = RunningStats()
        counters = CacheCounters()
        samples: Optional[List[float]] = [] if collect_responses else None

        warming = True
        warmup_seen = 0
        extra_left = extra_warmup
        now = self.now
        total_hits = 0
        total_misses = 0

        for index in range(len(trace)):
            page = trace[index]
            now += think
            if warming:
                if warmup_requests is not None:
                    warming = warmup_seen < warmup_requests
                elif cache.is_full:
                    if extra_left <= 0:
                        warming = False
                    else:
                        extra_left -= 1
            if not warming:
                measuring = True
            else:
                measuring = False
                warmup_seen += 1
            if tracer is not None:
                tracer.emit(
                    "client.request", now, page=int(page),
                    phase="measured" if measuring else "warmup",
                )

            if cache.lookup(page, now):
                total_hits += 1
                if tracer is not None:
                    tracer.emit("client.hit", now, page=int(page))
                if measuring:
                    response.add(0.0)
                    counters.record_hit()
                    if samples is not None:
                        samples.append(0.0)
                continue

            total_misses += 1
            physical = mapping.to_physical(page)
            arrival = next_arrival(physical, now)
            wait = arrival - now
            if tracer is not None:
                tracer.emit("client.miss", now, page=int(page),
                            physical=int(physical))
                tracer.emit("client.wait", arrival, page=int(page),
                            physical=int(physical), wait=wait)
            now = arrival
            cache.admit(page, now)
            if measuring:
                response.add(wait)
                counters.record_miss(disk_of_physical(physical))
                if samples is not None:
                    samples.append(wait)

        profile = self.profile
        if profile is not None and profile.enabled:
            name = "reference" if reference_arithmetic else "fast"
            profile.count(f"engine.{name}.loop_iterations", len(trace))
            profile.count(f"engine.{name}.hits", total_hits)
            profile.count(f"engine.{name}.misses", total_misses)

        self.now = now
        return EngineOutcome(
            response=response,
            counters=counters,
            measured_requests=response.count,
            warmup_requests=warmup_seen,
            final_time=now,
            samples=samples,
        )

    def _run_trace_multichannel(
        self,
        trace: RequestTrace,
        *,
        warmup_requests: Optional[int],
        collect_responses: bool,
        extra_warmup: int,
        tracer,
        reference_arithmetic: bool = False,
        dispatch_arithmetic: bool = False,
    ) -> EngineOutcome:
        """The tuner-aware loop for multi-channel programs.

        Same phase protocol as the single-channel loops, plus the
        single-frequency tuner: the client listens to one channel at a
        time (channel 0 initially), and a miss whose page lives on a
        different channel first retunes — the earliest usable completion
        moves from ``now`` to ``now + retune_cost`` broadcast units.
        Waits still come from the §2.1 closed form (each channel row is
        a §2.2 program with fixed per-page gaps); ``reference_arithmetic``
        swaps in the bisection golden model and ``dispatch_arithmetic``
        (profiled runs) routes every miss through ``next_arrival`` so the
        timing tiers are attributed.
        """
        program = self.program
        cache = self.cache
        think = self.think_time
        retune_cost = self.retune_cost

        cache_lookup = cache.lookup
        cache_admit = cache.admit
        to_physical = self.mapping.to_physical
        disk_of_physical = self.layout.disk_of_page
        channel_map = program.channel_map()
        next_arrival = (
            program.next_arrival_bisect
            if reference_arithmetic
            else program.next_arrival
        )
        fixed_gap = program.fixed_gap
        closed_form = not (reference_arithmetic or dispatch_arithmetic)

        response = RunningStats()
        counters = CacheCounters()
        samples: Optional[List[float]] = [] if collect_responses else None

        warming = True
        warmup_seen = 0
        extra_left = extra_warmup
        now = self.now
        current = 0  # tuned channel; every client starts on channel 0
        retunes_measured = 0
        total_hits = 0
        total_misses = 0
        total_retunes = 0
        gaps: Dict[int, object] = {}
        gaps_get = gaps.get
        disks: Dict[int, int] = {}
        disks_get = disks.get

        pages = trace.pages.tolist()
        for index in range(len(pages)):
            page = pages[index]
            now += think
            if warming:
                if warmup_requests is not None:
                    warming = warmup_seen < warmup_requests
                elif cache.is_full:
                    if extra_left <= 0:
                        warming = False
                    else:
                        extra_left -= 1
            measuring = not warming
            if warming:
                warmup_seen += 1
            if tracer is not None:
                tracer.emit(
                    "client.request", now, page=int(page),
                    phase="measured" if measuring else "warmup",
                )

            if cache_lookup(page, now):
                total_hits += 1
                if tracer is not None:
                    tracer.emit("client.hit", now, page=int(page))
                if measuring:
                    response.add(0.0)
                    counters.record_hit()
                    if samples is not None:
                        samples.append(0.0)
                continue

            total_misses += 1
            physical = to_physical(page)
            target = channel_map[physical]
            listen = now
            if tracer is not None:
                tracer.emit("client.miss", now, page=int(page),
                            physical=int(physical))
            if target != current:
                total_retunes += 1
                if measuring:
                    retunes_measured += 1
                if tracer is not None:
                    tracer.emit(
                        "client.retune", now, page=int(page),
                        physical=int(physical),
                        from_channel=current, to_channel=target,
                    )
                current = target
                listen = now + retune_cost
            if closed_form:
                entry = gaps_get(physical)
                if entry is None:
                    entry = fixed_gap(physical)
                    gaps[physical] = entry if entry is not None else False
                if entry:
                    residue, gap = entry
                    base = int(listen) + 1
                    arrival = float(base + (residue - base) % gap)
                else:
                    arrival = next_arrival(physical, listen)
            else:
                arrival = next_arrival(physical, listen)
            wait = arrival - now
            if tracer is not None:
                tracer.emit("client.wait", arrival, page=int(page),
                            physical=int(physical), wait=wait)
            now = arrival
            cache_admit(page, now)
            if measuring:
                response.add(wait)
                disk = disks_get(physical)
                if disk is None:
                    disk = disk_of_physical(physical)
                    disks[physical] = disk
                counters.record_miss(disk)
                if samples is not None:
                    samples.append(wait)

        profile = self.profile
        if profile is not None and profile.enabled:
            name = "reference" if reference_arithmetic else "fast"
            profile.count(f"engine.{name}.loop_iterations", len(pages))
            profile.count(f"engine.{name}.hits", total_hits)
            profile.count(f"engine.{name}.misses", total_misses)
            profile.count(f"engine.{name}.retunes", total_retunes)

        self.now = now
        return EngineOutcome(
            response=response,
            counters=counters,
            measured_requests=response.count,
            warmup_requests=warmup_seen,
            final_time=now,
            samples=samples,
            retunes=retunes_measured,
        )
