"""The fast analytic-stepping simulation engine.

Because the §2.2 program gives every page a *fixed* inter-arrival time,
the wait a cache miss experiences is fully determined by the request
instant: ``next_completion(page, t) - t``, found by bisection into the
page's occurrence list.  The engine therefore advances directly from
request to request instead of ticking through broadcast slots, which is
what makes full paper-scale parameter sweeps (48 design points x 15,000
measured requests each) practical in pure Python.

The engine is semantically identical to the process-oriented engine in
:mod:`repro.experiments.simengine` — the test suite feeds both the same
trace and asserts per-request equality — but is the default for all
figure reproductions.

Measurement protocol (§5): response times are recorded only once the
cache has filled ("the cache warm-up effects were eliminated by
beginning our measurements only after the cache was full"), after which
``num_requests`` requests are measured.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cache.base import CacheCounters, CachePolicy
from repro.core.disks import DiskLayout
from repro.core.schedule import BroadcastSchedule
from repro.errors import ConfigurationError
from repro.sim.stats import RunningStats
from repro.workload.mapping import LogicalPhysicalMapping
from repro.workload.trace import RequestTrace


@dataclass
class EngineOutcome:
    """Raw measurements from one engine run."""

    response: RunningStats
    counters: CacheCounters
    measured_requests: int
    warmup_requests: int
    final_time: float
    #: Per-request response times of the measured phase; populated only
    #: when the engine ran with ``collect_responses=True``.
    samples: Optional[list] = None

    @property
    def mean_response_time(self) -> float:
        """Mean response time over the measured phase, in broadcast units."""
        return self.response.mean


class FastEngine:
    """Request-to-request stepping over a periodic broadcast schedule."""

    def __init__(
        self,
        schedule: BroadcastSchedule,
        mapping: LogicalPhysicalMapping,
        layout: DiskLayout,
        cache: CachePolicy,
        think_time: float,
        tracer=None,
    ):
        if think_time < 0:
            raise ConfigurationError(f"think_time must be >= 0, got {think_time}")
        self.schedule = schedule
        self.mapping = mapping
        self.layout = layout
        self.cache = cache
        self.think_time = think_time
        self.now = 0.0
        #: Optional :class:`repro.obs.trace.Tracer` emitting the same
        #: ``client.*`` records as the process engine's client; ``None``
        #: (the default) adds one branch per request and nothing else.
        self.tracer = tracer

    def run_trace(
        self,
        trace: RequestTrace,
        warmup_requests: Optional[int] = None,
        collect_responses: bool = False,
        extra_warmup: int = 0,
    ) -> EngineOutcome:
        """Run the full trace; measure once warm-up ends.

        The default warm-up rule is the paper's §5 protocol: wait until
        the cache is full, then (to measure *steady state*, not the
        cache-convergence transient) keep warming for ``extra_warmup``
        further requests.  ``warmup_requests`` overrides both with a
        fixed request count.  With ``collect_responses`` the per-request
        response times of the measured phase are retained on the outcome
        (``outcome.samples``) for engine cross-validation.
        """
        schedule = self.schedule
        mapping = self.mapping
        cache = self.cache
        think = self.think_time
        disk_of_physical = self.layout.disk_of_page

        response = RunningStats()
        counters = CacheCounters()
        samples: list[float] = [] if collect_responses else None  # type: ignore[assignment]

        warming = True
        warmup_seen = 0
        extra_left = extra_warmup
        now = self.now
        tracer = self.tracer
        if tracer is not None and not tracer.enabled:
            tracer = None

        for index in range(len(trace)):
            page = trace[index]
            now += think
            if warming:
                if warmup_requests is not None:
                    warming = warmup_seen < warmup_requests
                elif cache.is_full:
                    if extra_left <= 0:
                        warming = False
                    else:
                        extra_left -= 1
            if not warming:
                measuring = True
            else:
                measuring = False
                warmup_seen += 1
            if tracer is not None:
                tracer.emit(
                    "client.request", now, page=int(page),
                    phase="measured" if measuring else "warmup",
                )

            if cache.lookup(page, now):
                if tracer is not None:
                    tracer.emit("client.hit", now, page=int(page))
                if measuring:
                    response.add(0.0)
                    counters.record_hit()
                    if samples is not None:
                        samples.append(0.0)
                continue

            physical = mapping.to_physical(page)
            arrival = schedule.next_arrival(physical, now)
            wait = arrival - now
            if tracer is not None:
                tracer.emit("client.miss", now, page=int(page),
                            physical=int(physical))
                tracer.emit("client.wait", arrival, page=int(page),
                            physical=int(physical), wait=wait)
            now = arrival
            cache.admit(page, now)
            if measuring:
                response.add(wait)
                counters.record_miss(disk_of_physical(physical))
                if samples is not None:
                    samples.append(wait)

        self.now = now
        return EngineOutcome(
            response=response,
            counters=counters,
            measured_requests=response.count,
            warmup_requests=warmup_seen,
            final_time=now,
            samples=samples,
        )
