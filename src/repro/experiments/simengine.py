"""The process-oriented engine: the faithful CSIM-style simulation.

Builds the full cast — a :class:`~repro.sim.kernel.Simulator`, a
:class:`~repro.server.channel.BroadcastChannel`, a
:class:`~repro.server.server.BroadcastServer`, and one or more
:class:`~repro.client.client.Client` processes — and runs them to
completion.  It produces exactly the same per-request response times as
the fast engine for a shared trace (asserted by the integration tests);
its added value is generality: multiple concurrent clients with
different caches and workloads sharing one broadcast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.cache.base import CachePolicy
from repro.client.client import ChannelTuner, Client, ClientReport
from repro.core.disks import DiskLayout
from repro.core.schedule import BroadcastProgram, BroadcastSchedule
from repro.errors import SimulationError
from repro.server.channel import BroadcastChannel
from repro.server.server import BroadcastServer
from repro.sim.kernel import Simulator
from repro.workload.mapping import LogicalPhysicalMapping
from repro.workload.trace import RequestTrace


@dataclass
class ClientSpec:
    """One client's wiring for a multi-client simulation."""

    mapping: LogicalPhysicalMapping
    cache: CachePolicy
    trace: RequestTrace
    think_time: float = 2.0
    warmup_requests: Optional[int] = None
    collect_responses: bool = False
    extra_warmup: int = 0
    name: str = "client"


class ProcessEngine:
    """Run one or many clients against a shared broadcast."""

    def __init__(self, schedule: BroadcastSchedule, layout: DiskLayout,
                 tracer=None, profile=None, *, retune_cost: float = 1.0):
        self.schedule = schedule
        self.layout = layout
        self.sim = Simulator()
        #: Set for multi-channel programs: one physical
        #: :class:`BroadcastChannel` + :class:`BroadcastServer` pair per
        #: program row, all on the shared simulator; clients then attach
        #: through per-client :class:`ChannelTuner` state.
        self.program = schedule if isinstance(schedule, BroadcastProgram) else None
        self.retune_cost = retune_cost
        if self.program is None:
            self.channel = BroadcastChannel(self.sim, schedule)
            self.server = BroadcastServer(self.sim, schedule, self.channel)
            self.channels = [self.channel]
            self.servers = [self.server]
        else:
            self.channels = []
            self.servers = []
            for index, row in enumerate(self.program.channels):
                channel = BroadcastChannel(self.sim, row)
                channel.channel_index = index
                self.channels.append(channel)
                self.servers.append(BroadcastServer(self.sim, row, channel))
            self.channel = self.channels[0]
            self.server = self.servers[0]
        self.clients: List[Client] = []
        #: Optional :class:`repro.obs.trace.Tracer` shared by the kernel,
        #: the channels, and every attached client.
        self.tracer = tracer
        if tracer is not None:
            self.sim.trace = tracer
            for channel in self.channels:
                channel.tracer = tracer
        #: Optional :class:`repro.obs.profile.Profiler`; :meth:`run`
        #: reports kernel event counts and the event-heap high-water
        #: mark into it.
        self.profile = profile

    def add_client(self, spec: ClientSpec) -> Client:
        """Attach a client process built from ``spec``."""
        tuner = None
        if self.program is not None:
            tuner = ChannelTuner(
                channels=self.channels,
                channel_of=self.program.channel_map(),
                retune_cost=self.retune_cost,
            )
        client = Client(
            sim=self.sim,
            channel=self.channel,
            mapping=spec.mapping,
            layout=self.layout,
            cache=spec.cache,
            trace=spec.trace,
            think_time=spec.think_time,
            warmup_requests=spec.warmup_requests,
            collect_responses=spec.collect_responses,
            extra_warmup=spec.extra_warmup,
            name=spec.name,
            tracer=self.tracer,
            tuner=tuner,
        )
        self.clients.append(client)
        return client

    def run(self, time_limit: Optional[float] = None) -> List[ClientReport]:
        """Run until every client finishes its trace; return their reports."""
        if not self.clients:
            raise SimulationError("no clients attached to the process engine")
        pending = [client.process for client in self.clients]
        events_before = self.sim.events_processed
        for process in pending:
            self.sim.run_until_event(process, limit=time_limit)
        profile = self.profile
        if profile is not None and profile.enabled:
            profile.count("engine.process.events",
                          self.sim.events_processed - events_before)
            profile.count("engine.process.clients", len(self.clients))
            profile.peak("engine.process.heap_peak", self.sim.heap_peak)
        return [client.report for client in self.clients]


def run_single_client(
    schedule: BroadcastSchedule,
    layout: DiskLayout,
    mapping: LogicalPhysicalMapping,
    cache: CachePolicy,
    trace: RequestTrace,
    *, think_time: float = 2.0,
    warmup_requests: Optional[int] = None,
    collect_responses: bool = False,
    extra_warmup: int = 0,
    tracer=None,
    profile=None,
    retune_cost: float = 1.0,
) -> ClientReport:
    """Convenience wrapper: one client, one broadcast, run to completion."""
    engine = ProcessEngine(schedule, layout, tracer=tracer, profile=profile,
                           retune_cost=retune_cost)
    engine.add_client(
        ClientSpec(
            mapping=mapping,
            cache=cache,
            trace=trace,
            think_time=think_time,
            warmup_requests=warmup_requests,
            collect_responses=collect_responses,
            extra_warmup=extra_warmup,
        )
    )
    return engine.run()[0]


def run_clients(
    schedule: BroadcastSchedule,
    layout: DiskLayout,
    specs: Sequence[ClientSpec],
    *, time_limit: Optional[float] = None,
    tracer=None,
) -> List[ClientReport]:
    """Run several clients sharing one broadcast; reports in spec order."""
    engine = ProcessEngine(schedule, layout, tracer=tracer)
    for spec in specs:
        engine.add_client(spec)
    return engine.run(time_limit=time_limit)
