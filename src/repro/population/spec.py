"""Population specs: declarative client fleets over the plan layer.

The paper simulates *one* client against the broadcast; the systems it
argues about serve thousands.  A :class:`PopulationSpec` describes such
a fleet declaratively: named :class:`SegmentSpec` groups ("commuters",
"dashboards", ...), each giving a client count and *distributions* over
the client-side knobs — cache size, policy, offset, noise, think time,
workload drift.  The spec expands (:func:`expand`) into one frozen
:class:`~repro.exec.plan.RunPlan` per client, so a fleet rides the
existing executor/checkpoint machinery unchanged and inherits its
determinism contract: the expansion is a pure function of the spec.

Seeding: client ``i`` (global index across segments, in declaration
order) runs with ``derive_seed(spec.seed, i)`` — the same stride
:meth:`repro.sim.rng.RandomStreams.fork` uses — and its parameters are
sampled from the ``"population"`` stream of a :class:`RandomStreams`
rooted at that per-client seed, field by field in the fixed
:data:`SEGMENT_FIELDS` order.  A client's identity therefore depends
only on ``(spec.seed, i)`` and its segment's distributions — never on
fleet size, segment order elsewhere in the spec, or executor choice.

Specs round-trip through plain JSON dicts (:func:`spec_to_dict` /
:func:`spec_from_dict`) so fleets can live in version-controlled files
and be handed to ``python -m repro population --spec``.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import ConfigurationError
from repro.exec.plan import RunPlan, derive_seed
from repro.experiments.config import ExperimentConfig
from repro.experiments.engines import get_plan_engine
from repro.sim.rng import RandomStreams

#: The client-side knobs a segment may distribute, in the (fixed,
#: alphabetical) order they are sampled.  Extending this tuple is a
#: compatibility event: it changes how many draws each client makes.
SEGMENT_FIELDS: Tuple[str, ...] = (
    "cache_size", "drift_rotations", "noise", "offset", "policy",
    "think_time",
)

#: Fields whose sampled values must be coerced to ints.
_INT_FIELDS = frozenset({"cache_size", "offset"})


# ---------------------------------------------------------------------------
# Distributions
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Constant:
    """Every client in the segment gets exactly ``value``."""

    value: Union[int, float, str]

    def sample(self, rng):
        return self.value

    def to_dict(self) -> Dict:
        return {"kind": "constant", "value": self.value}


@dataclass(frozen=True)
class Choice:
    """Each client draws one of ``values`` (optionally weighted)."""

    values: Tuple[Union[int, float, str], ...]
    weights: Optional[Tuple[float, ...]] = None

    def __post_init__(self):
        object.__setattr__(self, "values", tuple(self.values))
        if not self.values:
            raise ConfigurationError("Choice needs at least one value")
        if self.weights is not None:
            object.__setattr__(self, "weights", tuple(
                float(w) for w in self.weights
            ))
            if len(self.weights) != len(self.values):
                raise ConfigurationError(
                    f"Choice got {len(self.values)} values but "
                    f"{len(self.weights)} weights"
                )
            if any(w < 0 for w in self.weights) or not sum(self.weights):
                raise ConfigurationError(
                    "Choice weights must be >= 0 and sum to > 0"
                )

    def sample(self, rng):
        if self.weights is None:
            return self.values[int(rng.integers(0, len(self.values)))]
        total = sum(self.weights)
        mark = float(rng.random()) * total
        cumulative = 0.0
        for value, weight in zip(self.values, self.weights):
            cumulative += weight
            if mark < cumulative:
                return value
        return self.values[-1]  # mark == total after rounding

    def to_dict(self) -> Dict:
        payload: Dict = {"kind": "choice", "values": list(self.values)}
        if self.weights is not None:
            payload["weights"] = list(self.weights)
        return payload


@dataclass(frozen=True)
class UniformInt:
    """Each client draws an integer uniformly from ``[low, high]``."""

    low: int
    high: int

    def __post_init__(self):
        if self.high < self.low:
            raise ConfigurationError(
                f"UniformInt needs low <= high, got [{self.low}, {self.high}]"
            )

    def sample(self, rng):
        return int(rng.integers(self.low, self.high + 1))

    def to_dict(self) -> Dict:
        return {"kind": "uniform_int", "low": self.low, "high": self.high}


@dataclass(frozen=True)
class Uniform:
    """Each client draws a float uniformly from ``[low, high)``."""

    low: float
    high: float

    def __post_init__(self):
        if self.high < self.low:
            raise ConfigurationError(
                f"Uniform needs low <= high, got [{self.low}, {self.high})"
            )

    def sample(self, rng):
        return float(rng.uniform(self.low, self.high))

    def to_dict(self) -> Dict:
        return {"kind": "uniform", "low": self.low, "high": self.high}


Distribution = Union[Constant, Choice, UniformInt, Uniform]

_DISTRIBUTION_KINDS = {
    "constant": lambda d: Constant(d["value"]),
    "choice": lambda d: Choice(tuple(d["values"]),
                               tuple(d["weights"]) if "weights" in d
                               else None),
    "uniform_int": lambda d: UniformInt(int(d["low"]), int(d["high"])),
    "uniform": lambda d: Uniform(float(d["low"]), float(d["high"])),
}


def as_distribution(value) -> Distribution:
    """Coerce a literal (or pass through a distribution) for a segment field."""
    if isinstance(value, (Constant, Choice, UniformInt, Uniform)):
        return value
    if isinstance(value, (int, float, str)):
        return Constant(value)
    raise ConfigurationError(
        f"cannot interpret {value!r} as a distribution; use Constant, "
        "Choice, UniformInt, Uniform, or a plain int/float/str"
    )


def distribution_from_dict(payload: Dict) -> Distribution:
    """Rebuild a distribution from its :meth:`to_dict` form."""
    kind = payload.get("kind")
    builder = _DISTRIBUTION_KINDS.get(kind)
    if builder is None:
        raise ConfigurationError(
            f"unknown distribution kind {kind!r}; valid kinds: "
            f"{', '.join(sorted(_DISTRIBUTION_KINDS))}"
        )
    return builder(payload)


# ---------------------------------------------------------------------------
# Segments and the population
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SegmentSpec:
    """One named group of clients sharing parameter distributions.

    Fields left ``None`` inherit the population's base config; plain
    literals are wrapped in :class:`Constant`.
    """

    name: str
    clients: int
    cache_size: Optional[Distribution] = None
    drift_rotations: Optional[Distribution] = None
    noise: Optional[Distribution] = None
    offset: Optional[Distribution] = None
    policy: Optional[Distribution] = None
    think_time: Optional[Distribution] = None

    def __post_init__(self):
        if not self.name:
            raise ConfigurationError("segment name must be non-empty")
        if self.clients < 1:
            raise ConfigurationError(
                f"segment {self.name!r} needs clients >= 1, "
                f"got {self.clients}"
            )
        for field_name in SEGMENT_FIELDS:
            value = getattr(self, field_name)
            if value is not None:
                object.__setattr__(
                    self, field_name, as_distribution(value)
                )

    def distributions(self) -> Dict[str, Distribution]:
        """The distributed fields, keyed by config field name."""
        return {
            field_name: getattr(self, field_name)
            for field_name in SEGMENT_FIELDS
            if getattr(self, field_name) is not None
        }

    def to_dict(self) -> Dict:
        payload: Dict = {"name": self.name, "clients": self.clients}
        for field_name, dist in self.distributions().items():
            payload[field_name] = dist.to_dict()
        return payload


@dataclass(frozen=True)
class PopulationSpec:
    """A declarative client fleet: base config + named segments + seed."""

    name: str
    segments: Tuple[SegmentSpec, ...]
    base: ExperimentConfig = ExperimentConfig()
    seed: int = 42
    engine: str = "fast"

    def __post_init__(self):
        object.__setattr__(self, "segments", tuple(self.segments))
        if not self.name:
            raise ConfigurationError("population name must be non-empty")
        if not self.segments:
            raise ConfigurationError(
                f"population {self.name!r} needs at least one segment"
            )
        names = [segment.name for segment in self.segments]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"population {self.name!r} has duplicate segment names: "
                f"{', '.join(sorted(set(n for n in names if names.count(n) > 1)))}"
            )
        get_plan_engine(self.engine)  # rejects unknown/non-plan engines

    @property
    def num_clients(self) -> int:
        """Total clients across every segment."""
        return sum(segment.clients for segment in self.segments)

    def segment_ranges(self) -> List[Tuple[SegmentSpec, range]]:
        """Each segment with its global client-index range, in order."""
        ranges: List[Tuple[SegmentSpec, range]] = []
        start = 0
        for segment in self.segments:
            ranges.append((segment, range(start, start + segment.clients)))
            start += segment.clients
        return ranges

    def to_dict(self) -> Dict:
        return spec_to_dict(self)


def client_overrides(
    spec: PopulationSpec, segment: SegmentSpec, index: int
) -> Dict[str, object]:
    """The sampled field overrides of global client ``index``.

    The draw protocol behind :func:`client_config`, exposed on its own
    so the batch fleet can bucket clients by their sampled identity
    (sub-segmentation) without constructing a config per client: draws
    come from the ``"population"`` stream rooted at the client's
    :func:`~repro.exec.plan.derive_seed` seed, consumed in
    :data:`SEGMENT_FIELDS` order (skipping undistributed fields), and
    coerced exactly as the config would coerce them.
    """
    rng = RandomStreams(derive_seed(spec.seed, index)).stream("population")
    overrides: Dict[str, object] = {}
    for field_name in SEGMENT_FIELDS:
        distribution = getattr(segment, field_name)
        if distribution is None:
            continue
        value = distribution.sample(rng)
        if field_name in _INT_FIELDS:
            value = int(value)
        elif field_name != "policy":
            value = float(value)
        overrides[field_name] = value
    return overrides


def client_config(
    spec: PopulationSpec, segment: SegmentSpec, index: int
) -> ExperimentConfig:
    """The frozen config of global client ``index`` in ``segment``.

    Pure function of ``(spec.seed, index, segment distributions, base)``:
    the per-client seed is :func:`~repro.exec.plan.derive_seed` of the
    population seed and the client's global index, and the parameter
    draws come from that seed's own ``"population"`` stream via
    :func:`client_overrides`.
    """
    return spec.base.with_(
        seed=derive_seed(spec.seed, index),
        label=f"{spec.name}/{segment.name}/client{index}",
        **client_overrides(spec, segment, index),
    )


def expand(spec: PopulationSpec) -> List[RunPlan]:
    """One plan per client, indexed globally in segment declaration order."""
    plans: List[RunPlan] = []
    for segment, indices in spec.segment_ranges():
        for index in indices:
            plans.append(RunPlan(
                config=client_config(spec, segment, index),
                engine=spec.engine,
                collect_responses=False,
                index=index,
            ))
    return plans


def scale_spec(spec: PopulationSpec, num_clients: int) -> PopulationSpec:
    """A copy of ``spec`` resized to exactly ``num_clients`` clients.

    Segment counts scale proportionally (largest-remainder rounding,
    at least one client per segment), so ``--clients 1000`` turns a
    10-client demo spec into the same fleet shape at scale.  Purely
    arithmetic — the scaled spec is as deterministic as the original.
    """
    if num_clients < len(spec.segments):
        raise ConfigurationError(
            f"cannot scale {spec.name!r} to {num_clients} clients: it "
            f"has {len(spec.segments)} segments (one client minimum each)"
        )
    total = spec.num_clients
    raw = [
        segment.clients * num_clients / total for segment in spec.segments
    ]
    counts = [max(1, int(value)) for value in raw]
    shortfall = num_clients - sum(counts)
    if shortfall > 0:
        # Hand out the remainder to the largest fractional parts.
        order = sorted(
            range(len(raw)),
            key=lambda i: (-(raw[i] - int(raw[i])), i),
        )
        for step in range(shortfall):
            counts[order[step % len(order)]] += 1
    else:
        order = sorted(range(len(counts)), key=lambda i: (-counts[i], i))
        step = 0
        while shortfall < 0:
            index = order[step % len(order)]
            if counts[index] > 1:
                counts[index] -= 1
                shortfall += 1
            step += 1
    segments = tuple(
        replace(segment, clients=count)
        for segment, count in zip(spec.segments, counts)
    )
    return replace(spec, segments=segments)


# ---------------------------------------------------------------------------
# JSON round-trip
# ---------------------------------------------------------------------------

#: Schema tag embedded in serialised specs.
SPEC_SCHEMA = "repro.population.spec/1"

#: Config fields stored as tuples (JSON has only lists).
_TUPLE_CONFIG_FIELDS = ("disk_sizes", "rel_freqs")


def spec_to_dict(spec: PopulationSpec) -> Dict:
    """A JSON-ready dict that :func:`spec_from_dict` rebuilds exactly."""
    base: Dict = {}
    for config_field in fields(ExperimentConfig):
        base[config_field.name] = getattr(spec.base, config_field.name)
    for name in _TUPLE_CONFIG_FIELDS:
        if base[name] is not None:
            base[name] = list(base[name])
    return {
        "schema": SPEC_SCHEMA,
        "name": spec.name,
        "seed": spec.seed,
        "engine": spec.engine,
        "base": base,
        "segments": [segment.to_dict() for segment in spec.segments],
    }


def spec_from_dict(payload: Dict) -> PopulationSpec:
    """Rebuild a :class:`PopulationSpec` from :func:`spec_to_dict` output."""
    schema = payload.get("schema", SPEC_SCHEMA)
    if schema != SPEC_SCHEMA:
        raise ConfigurationError(
            f"unsupported population spec schema {schema!r} "
            f"(expected {SPEC_SCHEMA!r})"
        )
    base_payload = dict(payload.get("base", {}))
    for name in _TUPLE_CONFIG_FIELDS:
        if base_payload.get(name) is not None:
            base_payload[name] = tuple(base_payload[name])
    known = {config_field.name for config_field in fields(ExperimentConfig)}
    unknown = sorted(set(base_payload) - known)
    if unknown:
        raise ConfigurationError(
            f"unknown base-config fields: {', '.join(unknown)}"
        )
    segments = []
    for segment_payload in payload.get("segments", []):
        distributed = {
            field_name: distribution_from_dict(segment_payload[field_name])
            for field_name in SEGMENT_FIELDS
            if field_name in segment_payload
        }
        segments.append(SegmentSpec(
            name=segment_payload["name"],
            clients=int(segment_payload["clients"]),
            **distributed,
        ))
    return PopulationSpec(
        name=payload["name"],
        segments=tuple(segments),
        base=ExperimentConfig(**base_payload),
        seed=int(payload.get("seed", 42)),
        engine=payload.get("engine", "fast"),
    )
