"""Mergeable fleet aggregates: exact where possible, bounded where not.

A population run produces one :class:`~repro.exec.run.ExperimentResult`
per client; what the caller wants is fleet-level shape: the mean of the
per-client means, their spread, tail percentiles, and a fairness
number.  Everything here is *mergeable* — ``merge(a, b)`` of two
partial aggregates equals the aggregate of the concatenated inputs —
so shards folded in any grouping give the same answer:

* :class:`repro.sim.stats.RunningStats` carries mean/variance/extrema
  exactly (parallel Welford merge);
* :class:`QuantileSketch` carries p50/p90/p99 with bounded relative
  error (geometric log-buckets; integer counts merge by addition, so
  the merge is exact and order-independent);
* :class:`FairnessAccumulator` carries Jain's fairness index exactly
  (it only needs ``n``, ``Σx`` and ``Σx²``).

``run_population`` folds results in plan order, so the aggregate is
byte-identical no matter which executor produced the results.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.stats import RunningStats

#: Geometric bucket growth factor.  Relative quantile error is bounded
#: by ``(gamma - 1)`` ≈ 2%, comfortably inside the sampling noise of a
#: stochastic fleet.
DEFAULT_GAMMA = 1.02


class QuantileSketch:
    """Streaming quantiles over positive values via geometric buckets.

    Value ``v > 0`` lands in bucket ``ceil(log(v) / log(gamma))``; a
    quantile query walks the buckets in index order and reports the
    boundary value ``gamma**index`` of the bucket holding the target
    rank.  Counts are integers, so merging sketches (bucket-wise
    addition) is exact and commutative — the sketch state never depends
    on arrival order or sharding.
    """

    __slots__ = ("gamma", "_log_gamma", "_buckets", "zero_count", "count")

    def __init__(self, gamma: float = DEFAULT_GAMMA):
        if gamma <= 1.0:
            raise ConfigurationError(f"gamma must be > 1, got {gamma}")
        self.gamma = float(gamma)
        self._log_gamma = math.log(self.gamma)
        self._buckets: Dict[int, int] = {}
        self.zero_count = 0  # values <= 0 (response times are >= 0)
        self.count = 0

    def add(self, value: float) -> None:
        """Record one sample."""
        self.count += 1
        if value <= 0.0:
            self.zero_count += 1
            return
        index = math.ceil(math.log(value) / self._log_gamma)
        self._buckets[index] = self._buckets.get(index, 0) + 1

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """A new sketch equal to this one fed with both inputs."""
        if other.gamma != self.gamma:
            raise ConfigurationError(
                f"cannot merge sketches with gamma {self.gamma} and "
                f"{other.gamma}"
            )
        merged = QuantileSketch(self.gamma)
        merged.count = self.count + other.count
        merged.zero_count = self.zero_count + other.zero_count
        merged._buckets = dict(self._buckets)
        for index, bucket_count in other._buckets.items():
            merged._buckets[index] = merged._buckets.get(index, 0) + bucket_count
        return merged

    def quantile(self, fraction: float) -> float:
        """The value at rank ``ceil(fraction * count)`` (0.0 if empty)."""
        if not 0.0 <= fraction <= 1.0:
            raise ConfigurationError(
                f"quantile fraction must be in [0, 1], got {fraction}"
            )
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(fraction * self.count))
        if rank <= self.zero_count:
            return 0.0
        seen = self.zero_count
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if seen >= rank:
                return self.gamma ** index
        return self.gamma ** max(self._buckets)  # pragma: no cover - guard

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<QuantileSketch n={self.count} "
            f"buckets={len(self._buckets)} gamma={self.gamma}>"
        )


class FairnessAccumulator:
    """Jain's fairness index over per-client values, mergeably.

    ``jain = (Σx)² / (n · Σx²)`` — 1.0 when every client sees the same
    value, ``1/n`` when one client gets everything.  The three running
    sums are all the state needed, so the merge is exact.
    """

    __slots__ = ("count", "total", "total_sq")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.total_sq = 0.0

    def add(self, value: float) -> None:
        """Record one per-client value."""
        self.count += 1
        self.total += value
        self.total_sq += value * value

    def merge(self, other: "FairnessAccumulator") -> "FairnessAccumulator":
        """A new accumulator equal to this one fed with both inputs."""
        merged = FairnessAccumulator()
        merged.count = self.count + other.count
        merged.total = self.total + other.total
        merged.total_sq = self.total_sq + other.total_sq
        return merged

    @property
    def jain(self) -> float:
        """The fairness index (1.0 for an empty or perfectly-even fleet)."""
        if self.count == 0 or self.total_sq == 0.0:
            return 1.0
        return (self.total * self.total) / (self.count * self.total_sq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FairnessAccumulator n={self.count} jain={self.jain:.3f}>"


class PopulationAggregate:
    """Fleet-level rollup of per-client experiment results.

    Tracks the distribution of per-client *mean response times* (exact
    moments, sketched percentiles, fairness) plus fleet totals (request
    volume, hit rate weighted by measured requests, wall time).  One
    aggregate per segment and one overall; both fold the same way.
    """

    __slots__ = ("response_means", "percentiles", "fairness", "clients",
                 "measured_requests", "warmup_requests", "_hit_weight",
                 "total_wall_seconds")

    def __init__(self, gamma: float = DEFAULT_GAMMA):
        self.response_means = RunningStats()
        self.percentiles = QuantileSketch(gamma)
        self.fairness = FairnessAccumulator()
        self.clients = 0
        self.measured_requests = 0
        self.warmup_requests = 0
        self._hit_weight = 0.0  # Σ hit_rate · measured_requests
        self.total_wall_seconds = 0.0

    def add_result(self, result) -> None:
        """Fold one client's :class:`ExperimentResult` into the rollup."""
        mean = result.mean_response_time
        self.response_means.add(mean)
        self.percentiles.add(mean)
        self.fairness.add(mean)
        self.clients += 1
        self.measured_requests += result.measured_requests
        self.warmup_requests += result.warmup_requests
        self._hit_weight += result.hit_rate * result.measured_requests
        self.total_wall_seconds += result.wall_seconds

    def add_mean_block(self, means, hit_rates, measured_each: int,
                       warmup_each: int) -> None:
        """Fold a whole block of per-client summaries at once.

        The columnar fleet kernel produces per-client means as arrays;
        folding them one :meth:`add_result` at a time would cost more
        than the simulation itself.  Bucket counts and fairness sums
        are exactly what sequential adds would produce; the moment
        accumulator uses the parallel Welford :meth:`merge` (same
        contract, different rounding than a sequential fold).
        ``measured_each``/``warmup_each`` are per-client counts, uniform
        across the block.
        """
        means = np.asarray(means, dtype=np.float64)
        clients = len(means)
        if clients == 0:
            return
        block = RunningStats()
        block.count = clients
        block._mean = float(means.mean())
        block._m2 = float(np.square(means - block._mean).sum())
        block.minimum = float(means.min())
        block.maximum = float(means.max())
        self.response_means = self.response_means.merge(block)

        sketch = self.percentiles
        positive = means > 0.0
        sketch.count += clients
        sketch.zero_count += int(clients - np.count_nonzero(positive))
        if positive.any():
            indices = np.ceil(
                np.log(means[positive]) / sketch._log_gamma
            ).astype(np.int64)
            buckets = sketch._buckets
            for index, bucket_count in zip(
                *(column.tolist()
                  for column in np.unique(indices, return_counts=True))
            ):
                buckets[index] = buckets.get(index, 0) + bucket_count

        self.fairness.count += clients
        self.fairness.total += float(means.sum())
        self.fairness.total_sq += float(np.square(means).sum())
        self.clients += clients
        self.measured_requests += int(measured_each) * clients
        self.warmup_requests += int(warmup_each) * clients
        self._hit_weight += float(
            np.asarray(hit_rates, dtype=np.float64).sum()
        ) * measured_each

    def merge(self, other: "PopulationAggregate") -> "PopulationAggregate":
        """A new aggregate equal to this one fed with both inputs."""
        merged = PopulationAggregate(self.percentiles.gamma)
        merged.response_means = self.response_means.merge(other.response_means)
        merged.percentiles = self.percentiles.merge(other.percentiles)
        merged.fairness = self.fairness.merge(other.fairness)
        merged.clients = self.clients + other.clients
        merged.measured_requests = (
            self.measured_requests + other.measured_requests
        )
        merged.warmup_requests = self.warmup_requests + other.warmup_requests
        merged._hit_weight = self._hit_weight + other._hit_weight
        merged.total_wall_seconds = (
            self.total_wall_seconds + other.total_wall_seconds
        )
        return merged

    @property
    def hit_rate(self) -> float:
        """Fleet hit rate, weighted by each client's measured requests."""
        if self.measured_requests == 0:
            return 0.0
        return self._hit_weight / self.measured_requests

    def snapshot(self) -> Dict:
        """A JSON-ready summary (manifest block and CLI table substrate).

        Wall time is keyed ``total_wall_seconds`` so
        :func:`repro.obs.manifest.strip_wall_clock` removes it when two
        runs are compared for determinism.
        """
        stats = self.response_means
        return {
            "clients": self.clients,
            "measured_requests": self.measured_requests,
            "warmup_requests": self.warmup_requests,
            "hit_rate": self.hit_rate,
            "response_mean": {
                "mean": stats.mean,
                "stddev": stats.stddev,
                "stderr": stats.stderr,
                "min": stats.minimum if stats.count else 0.0,
                "max": stats.maximum if stats.count else 0.0,
            },
            "percentiles": {
                "p50": self.percentiles.quantile(0.50),
                "p90": self.percentiles.quantile(0.90),
                "p99": self.percentiles.quantile(0.99),
            },
            "fairness": self.fairness.jain,
            "total_wall_seconds": self.total_wall_seconds,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PopulationAggregate clients={self.clients} "
            f"mean={self.response_means.mean:.1f}>"
        )


def fold_results(
    results,
    segment_ranges,
    gamma: float = DEFAULT_GAMMA,
) -> "tuple[PopulationAggregate, Dict[str, PopulationAggregate]]":
    """Fold per-client results into overall and per-segment aggregates.

    ``segment_ranges`` is ``PopulationSpec.segment_ranges()`` output;
    results are consumed positionally (plan order), so the fold is a
    pure function of the result list.
    """
    overall = PopulationAggregate(gamma)
    per_segment: Dict[str, PopulationAggregate] = {}
    for segment, indices in segment_ranges:
        aggregate = PopulationAggregate(gamma)
        for index in indices:
            aggregate.add_result(results[index])
            overall.add_result(results[index])
        per_segment[segment.name] = aggregate
    return overall, per_segment
