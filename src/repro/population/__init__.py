"""Population-scale simulation: declarative client fleets on the exec layer.

See ``docs/POPULATION.md``.  The public surface:

* :class:`PopulationSpec` / :class:`SegmentSpec` — declare a fleet as
  named segments with distributions (:class:`Constant`,
  :class:`Choice`, :class:`UniformInt`, :class:`Uniform`) over the
  client-side knobs;
* :func:`expand` — the spec's deterministic per-client
  :class:`~repro.exec.plan.RunPlan` list;
* :func:`run_population` — execute the fleet (serial or parallel,
  checkpoint-resumable) and fold it into a :class:`PopulationResult`
  of mergeable :class:`PopulationAggregate` rollups;
* :func:`spec_to_dict` / :func:`spec_from_dict` — JSON round-trip for
  version-controlled fleet files and the CLI.
"""

from repro.population.aggregate import (
    FairnessAccumulator,
    PopulationAggregate,
    QuantileSketch,
)
from repro.population.run import (
    POPULATION_SCHEMA,
    PopulationResult,
    build_population_manifest,
    run_population,
)
from repro.population.spec import (
    SEGMENT_FIELDS,
    Choice,
    Constant,
    PopulationSpec,
    SegmentSpec,
    Uniform,
    UniformInt,
    client_config,
    expand,
    scale_spec,
    spec_from_dict,
    spec_to_dict,
)

__all__ = [
    "SEGMENT_FIELDS",
    "POPULATION_SCHEMA",
    "Choice",
    "Constant",
    "FairnessAccumulator",
    "PopulationAggregate",
    "PopulationResult",
    "PopulationSpec",
    "QuantileSketch",
    "SegmentSpec",
    "Uniform",
    "UniformInt",
    "build_population_manifest",
    "client_config",
    "expand",
    "run_population",
    "scale_spec",
    "spec_from_dict",
    "spec_to_dict",
]
