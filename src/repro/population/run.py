"""Running a population: expand, execute, fold, report.

:func:`run_population` is the fleet counterpart of
:func:`repro.experiments.runner.sweep_results`: it expands a
:class:`~repro.population.spec.PopulationSpec` into per-client plans,
hands them to an executor (serial by default, process pool via
``jobs``), and folds the per-client results into a
:class:`PopulationResult` — overall and per-segment
:class:`~repro.population.aggregate.PopulationAggregate` rollups.

The determinism contract is inherited, not re-implemented: plans are
frozen, the executor returns results in plan order regardless of worker
count, and the fold consumes them positionally.  A population manifest
(schema ``repro.population/1``) therefore compares byte-identical
across ``jobs`` settings once wall-clock fields are stripped — that is
exactly what ``scripts/population_smoke.py`` gates in CI.  Checkpoint
resume also rides the existing machinery: per-client plans carry
distinct labels, so their fingerprints key a
:class:`~repro.exec.checkpoint.SweepCheckpoint` journal one client at
a time.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.exec.checkpoint import SweepCheckpoint
from repro.exec.executor import Executor, resolve_executor, usable_cores
from repro.exec.run import ExperimentResult
from repro.obs.clock import perf_counter
from repro.obs.manifest import write_manifest
from repro.population.aggregate import (
    DEFAULT_GAMMA,
    PopulationAggregate,
    fold_results,
)
from repro.population.spec import PopulationSpec, expand, spec_to_dict

#: Schema tag of the population manifest document.
POPULATION_SCHEMA = "repro.population/1"


@dataclass
class PopulationResult:
    """Everything a population run produced, rolled up."""

    spec: PopulationSpec
    overall: PopulationAggregate
    segments: Dict[str, PopulationAggregate]
    wall_seconds: float
    #: The population manifest dict, present when ``run_population`` was
    #: asked to write one (``manifest=...``).
    manifest: Optional[Dict] = None
    #: Per-client results, kept only on request (``keep_results=True``;
    #: a large fleet's result list dwarfs the rollup).
    results: Optional[List[ExperimentResult]] = field(
        default=None, repr=False
    )

    @property
    def num_clients(self) -> int:
        """Clients simulated (== the spec's client count)."""
        return self.overall.clients

    def summary(self) -> str:
        """One-line human-readable fleet result."""
        stats = self.overall.response_means
        return (
            f"{self.spec.name}: {self.num_clients} clients, "
            f"response mean={stats.mean:.1f} bu "
            f"(p99={self.overall.percentiles.quantile(0.99):.1f}), "
            f"fairness={self.overall.fairness.jain:.3f}"
        )


def build_population_manifest(
    result: PopulationResult, *, metrics=None, tracer=None,
    profile=None, monitors=None,
) -> Dict:
    """The manifest dict for one :class:`PopulationResult`.

    Embeds the full serialised spec and its hash (the fleet analogue of
    ``config_hash``), the overall and per-segment rollup snapshots, and
    optional metrics/trace/profile/monitor blocks — same conventions as
    :func:`repro.obs.manifest.build_manifest`.
    """
    spec_payload = spec_to_dict(result.spec)
    spec_json = json.dumps(spec_payload, sort_keys=True, default=str)
    manifest: Dict = {
        "schema": POPULATION_SCHEMA,
        "name": result.spec.name,
        "spec": spec_payload,
        "spec_hash": hashlib.sha256(spec_json.encode("utf-8")).hexdigest(),
        "engine": result.spec.engine,
        "seed": result.spec.seed,
        "num_clients": result.num_clients,
        "summary": result.overall.snapshot(),
        "segments": {
            name: aggregate.snapshot()
            for name, aggregate in result.segments.items()
        },
        "total_wall_seconds": result.wall_seconds,
    }
    if metrics is not None:
        manifest["metrics"] = metrics.snapshot()
    if tracer is not None:
        manifest["trace"] = {
            "enabled": tracer.enabled,
            "records_emitted": tracer.emitted,
        }
    if profile is not None:
        manifest["profile"] = profile.snapshot()
    if monitors is not None:
        manifest["monitors"] = monitors.snapshot()
    return manifest


def _record_population_metrics(metrics, result: PopulationResult) -> None:
    """Fold the fleet rollup into a metrics registry."""
    overall = result.overall
    metrics.counter("population.clients").inc(overall.clients)
    metrics.counter("population.requests.measured").inc(
        overall.measured_requests
    )
    metrics.counter("population.requests.warmup").inc(
        overall.warmup_requests
    )
    metrics.gauge("population.response.mean").set(
        overall.response_means.mean
    )
    metrics.gauge("population.response.p99").set(
        overall.percentiles.quantile(0.99)
    )
    metrics.gauge("population.fairness").set(overall.fairness.jain)
    metrics.gauge("population.hit_rate").set(overall.hit_rate)
    metrics.counter("population.runs").inc()


#: Minimum clients per worker before a process pool pays for itself.
#: ``BENCH_population.json`` recorded the per-client path at 0.86x with
#: 4 workers over a 50-client fleet — fork/pickle overhead swamped the
#: ~70ms of simulation each worker received.  Below this density the
#: pool degrades toward serial instead.
_MIN_CLIENTS_PER_WORKER = 64


def _effective_jobs(jobs: int, num_plans: int) -> int:
    """Clamp the requested worker count to what the fleet can feed.

    Never exceeds the affinity-visible cores (see
    :func:`~repro.exec.executor.usable_cores`) nor one worker per
    ``_MIN_CLIENTS_PER_WORKER`` clients; degrades to serial when the
    fleet is too small to amortise process start-up.
    """
    if jobs is None or jobs <= 1:
        return 1
    return max(
        1,
        min(jobs, usable_cores(), num_plans // _MIN_CLIENTS_PER_WORKER),
    )


def run_population(
    spec: PopulationSpec,
    *,
    jobs: int = 1,
    executor: Optional[Executor] = None,
    progress=None,
    checkpoint: Optional[SweepCheckpoint] = None,
    tracer=None,
    metrics=None,
    manifest: Optional[str] = None,
    keep_results: bool = False,
    gamma: float = DEFAULT_GAMMA,
    profile=None,
    monitors=None,
) -> PopulationResult:
    """Simulate the fleet ``spec`` describes and return its rollup.

    All options are keyword-only.  ``jobs`` selects the worker count
    (``executor`` overrides it with an explicit strategy); results are
    byte-identical at any count.  ``progress(completed, total, result)``
    fires per client in plan order; ``checkpoint`` attaches a
    :class:`~repro.exec.checkpoint.SweepCheckpoint` journal so an
    interrupted fleet resumes client-by-client.  ``tracer`` and
    ``metrics`` observe the run (an *enabled* tracer forces serial
    execution, as everywhere else); ``manifest`` names a JSON file that
    receives the population manifest.  ``keep_results=True`` retains the
    per-client result list on the returned object; ``gamma`` tunes the
    percentile sketch's relative accuracy.  ``profile`` attaches a
    :class:`repro.obs.profile.Profiler` and ``monitors`` a
    :class:`repro.obs.monitor.MonitorSuite`; either being *enabled*
    forces serial execution, like an enabled tracer.
    """
    if (spec.engine == "batch" and executor is None and progress is None
            and checkpoint is None and not keep_results):
        # The batch engine executes whole homogeneous segments as
        # columnar groups — there are no per-client plans to schedule,
        # so the fleet path replaces the executor entirely.  Callers
        # needing plan-level machinery (progress, checkpoints, kept
        # per-client results, a custom executor) fall through to it:
        # single-client batch plans produce identical results.
        from repro.batch.fleet import run_fleet

        return run_fleet(
            spec, gamma=gamma, tracer=tracer, metrics=metrics,
            manifest=manifest, profile=profile, monitors=monitors,
        )
    started = perf_counter()
    plans = expand(spec)
    runner = (executor if executor is not None
              else resolve_executor(_effective_jobs(jobs, len(plans))))
    results = runner.run(
        plans, tracer=tracer, progress=progress, checkpoint=checkpoint,
        profile=profile, monitors=monitors,
    )
    profiling = profile is not None and profile.enabled
    if profiling:
        profile.start_phase("aggregate")
    overall, per_segment = fold_results(
        results, spec.segment_ranges(), gamma
    )
    population = PopulationResult(
        spec=spec,
        overall=overall,
        segments=per_segment,
        wall_seconds=perf_counter() - started,
        results=list(results) if keep_results else None,
    )
    if metrics is not None:
        _record_population_metrics(metrics, population)
    if manifest is not None:
        population.manifest = build_population_manifest(
            population, metrics=metrics, tracer=tracer,
            profile=profile, monitors=monitors,
        )
        write_manifest(population.manifest, manifest)
    if profiling:
        profile.stop_phase("aggregate")
    return population
