"""Broadcast Disks: data management for asymmetric communication environments.

A complete reproduction of Acharya, Alonso, Franklin & Zdonik (SIGMOD
1995).  The library provides:

* **Broadcast program generation** (:mod:`repro.core`): the multi-disk
  interleaving algorithm of §2.2, plus flat/skewed/random comparison
  programs, closed-form delay analysis, and a broadcast-shaping
  optimiser.
* **Client cache management** (:mod:`repro.cache`): the paper's policy
  family — P, PIX, LRU, L, LIX — and the 2Q/LRU-K extension baselines.
* **Workload modelling** (:mod:`repro.workload`): Zipf-over-regions
  access, the Offset/Noise logical→physical mapping.
* **Two simulation engines** (:mod:`repro.experiments`,
  :mod:`repro.sim`): a fast analytic-stepping engine for full-scale
  parameter sweeps and a process-oriented discrete-event engine
  (CSIM substitute) supporting multiple clients and prefetching.
* **The paper's evaluation** (:mod:`repro.experiments.figures`): one
  callable per table and figure.

Quickstart::

    from repro import DiskLayout, ExperimentConfig, run_experiment

    config = ExperimentConfig(
        disk_sizes=(500, 2000, 2500),  # the paper's D5
        delta=3,
        cache_size=500,
        offset=500,
        noise=0.30,
        policy="LIX",
    )
    result = run_experiment(config)
    print(result.summary())
"""

from repro.cache import available_policies, make_policy
from repro.core import (
    BroadcastProgram,
    BroadcastSchedule,
    DiskLayout,
    ProgramSpec,
)
from repro.errors import (
    ConfigurationError,
    MonitorError,
    PolicyError,
    ReproError,
    ScheduleError,
    SimulationError,
)
from repro.experiments import (
    DISK_PRESETS,
    ExperimentConfig,
    ExperimentResult,
    run_experiment,
    sweep,
    sweep_results,
)
from repro.experiments.engines import EngineSpec, engine_names, register_engine
from repro.experiments.simengine import run_clients
from repro.obs.metrics import MetricsRegistry
from repro.obs.monitor import MonitorSuite
from repro.obs.profile import Profiler
from repro.obs.trace import Tracer
from repro.population import (
    PopulationResult,
    PopulationSpec,
    SegmentSpec,
    run_population,
)
from repro.workload import LogicalPhysicalMapping, ZipfRegionDistribution

__version__ = "1.3.0"

__all__ = [
    "BroadcastProgram",
    "BroadcastSchedule",
    "ConfigurationError",
    "DISK_PRESETS",
    "DiskLayout",
    "EngineSpec",
    "ExperimentConfig",
    "ExperimentResult",
    "LogicalPhysicalMapping",
    "MetricsRegistry",
    "MonitorError",
    "MonitorSuite",
    "PolicyError",
    "PopulationResult",
    "PopulationSpec",
    "Profiler",
    "ProgramSpec",
    "ReproError",
    "ScheduleError",
    "SegmentSpec",
    "SimulationError",
    "Tracer",
    "ZipfRegionDistribution",
    "__version__",
    "available_policies",
    "engine_names",
    "make_policy",
    "register_engine",
    "run_clients",
    "run_experiment",
    "run_population",
    "sweep",
    "sweep_results",
]
