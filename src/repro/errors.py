"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised deliberately by the library derive from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An experiment, program, or policy was configured inconsistently.

    Examples: a disk layout whose sizes do not cover the database, a
    relative frequency that is not a positive integer, or a cache capacity
    below one page.
    """


class ScheduleError(ReproError):
    """A broadcast schedule violates a structural requirement.

    Raised, for example, when a page is requested that never appears on
    the broadcast, so the client would wait forever.
    """


class SimulationError(ReproError):
    """The simulation kernel detected an inconsistent state.

    Examples: scheduling an event in the past, resuming a process that
    has already terminated, or triggering an event twice.
    """


class MonitorError(ReproError):
    """An invariant monitor observed a violation in strict mode.

    Raised by :meth:`repro.obs.monitor.MonitorSuite.end_run` when a run
    broke a simulation invariant (periodicity, occupancy, conservation)
    and the suite was configured with ``mode="strict"``.
    """


class PolicyError(ReproError):
    """A cache replacement policy was used incorrectly.

    Examples: admitting a page that is already cached, or notifying a hit
    for a page the cache does not hold.
    """
