"""The hybrid broadcast channel: interleaved push program and pull slots.

Real-time slot layout with ``pull_spacing = k``: every k-th slot
(real indices ``k-1, 2k-1, ...``) is a *pull slot*; all others carry the
push program in its usual cyclic order.  The mapping between push-slot
indices and real slots is closed-form, so push arrival queries stay
O(log occurrences) like the plain engine:

* push slot ``j`` airs at real slot ``g(j) = j + j // (k - 1)``;
* real slot ``r`` carries push slot ``r - (r + 1) // k`` when
  ``(r + 1) % k != 0``.

Pull slots serve a FIFO queue of requested physical pages; an empty
queue wastes the slot (the conservative model — a production server
would backfill with extra push).
"""

from __future__ import annotations

import math
from bisect import bisect_right
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.core.schedule import BroadcastSchedule
from repro.errors import ConfigurationError
from repro.sim.kernel import Event, Simulator
from repro.sim.stats import TimeWeightedStat


class HybridChannel:
    """Push program + pull queue sharing one broadcast channel."""

    def __init__(
        self,
        sim: Simulator,
        schedule: BroadcastSchedule,
        pull_spacing: int,
    ):
        if pull_spacing < 2:
            raise ConfigurationError(
                f"pull_spacing must be >= 2 (k-th slot reserved), "
                f"got {pull_spacing}"
            )
        self.sim = sim
        self.schedule = schedule
        self.pull_spacing = pull_spacing
        # Pull queue: (physical_page, waiter event).
        self._pull_queue: Deque[Tuple[int, Event]] = deque()
        # Push waiters: (due_time, page) -> events (same shape as the
        # plain BroadcastChannel).
        self._push_waiters: Dict[Tuple[float, int], List[Event]] = {}
        self._demand_event: Optional[Event] = None
        self.pull_slots_used = 0
        self.pull_slots_wasted = 0
        #: Time-weighted pull-queue length (a load/utilisation measure).
        self.queue_stat = TimeWeightedStat(start_time=sim.now)

    # -- time arithmetic ---------------------------------------------------
    def real_time_of_push_slot(self, push_slot: int) -> int:
        """Real slot index at which (absolute) push slot ``push_slot`` airs."""
        k = self.pull_spacing
        return push_slot + push_slot // (k - 1)

    def next_push_arrival(self, physical_page: int, time: float) -> float:
        """Completion instant of the page's next *push* transmission.

        Analogue of :meth:`BroadcastSchedule.next_arrival` on the
        stretched timeline.
        """
        schedule = self.schedule
        occurrences = schedule.occurrences(physical_page)
        period = schedule.period
        k = self.pull_spacing

        # Convert 'time' to the absolute push-slot axis: among real
        # slots [0, floor(time)], floor(time)+1 - (floor(time)+1)//k are
        # push slots.  A slot airing right now completes *after* 'time',
        # so start the forward walk a couple of slots early and let the
        # strict completion check pick the true next arrival.
        completed_real = int(math.floor(time))
        pushed = completed_real + 1 - ((completed_real + 1) // k)
        start = max(0, pushed - 2)

        cycle, position = divmod(start, period)
        index = bisect_right(occurrences, position - 1)
        for _attempt in range(len(occurrences) + 4):
            if index == len(occurrences):
                cycle += 1
                index = 0
            absolute = cycle * period + int(occurrences[index])
            completion = float(self.real_time_of_push_slot(absolute)) + 1.0
            if completion > time:
                return completion
            index += 1
        raise AssertionError("unreachable: bounded search must terminate")

    def next_pull_slot_completion(self, time: float, queue_position: int) -> float:
        """Completion instant of the (queue_position+1)-th pull slot after ``time``.

        Pull slots complete at real instants ``k, 2k, 3k, ...``.
        """
        k = self.pull_spacing
        first = (math.floor(time) // k + 1) * k
        if first <= time:
            first += k
        return float(first + queue_position * k)

    # -- client-facing API ---------------------------------------------------
    def wait_for_push(self, physical_page: int) -> Event:
        """Event firing at the page's next push completion."""
        due = self.next_push_arrival(physical_page, self.sim.now)
        event = self.sim.event()
        self._push_waiters.setdefault((due, physical_page), []).append(event)
        self._signal_demand()
        return event

    def request_pull(self, physical_page: int) -> Event:
        """Queue a pull; the event fires when the server airs the page."""
        event = self.sim.event()
        self._pull_queue.append((physical_page, event))
        self.queue_stat.record(self.sim.now, len(self._pull_queue))
        self._signal_demand()
        return event

    @property
    def pull_queue_length(self) -> int:
        """Outstanding pull requests."""
        return len(self._pull_queue)

    # -- server-facing API -----------------------------------------------------
    def has_demand(self) -> bool:
        """True while any waiter or queued pull needs service."""
        return bool(self._push_waiters) or bool(self._pull_queue)

    def next_interesting_time(self, now: float) -> Optional[float]:
        """Earliest instant at which a delivery matters."""
        candidates = []
        if self._push_waiters:
            candidates.append(min(due for due, _page in self._push_waiters))
        if self._pull_queue:
            candidates.append(self.next_pull_slot_completion(now, 0))
        return min(candidates) if candidates else None

    def deliver_at(self, now: float) -> None:
        """Fire whatever completes at instant ``now``."""
        k = self.pull_spacing
        is_pull_slot = abs(now / k - round(now / k)) < 1e-9 and now > 0
        if is_pull_slot and self._pull_queue:
            page, event = self._pull_queue.popleft()
            self.queue_stat.record(now, len(self._pull_queue))
            self.pull_slots_used += 1
            event.succeed(now)
            # A pulled page is on the air: opportunistically satisfy any
            # push waiters for the same page (they would only have
            # waited longer).
            for (due, waited_page) in list(self._push_waiters):
                if waited_page == page:
                    for waiter in self._push_waiters.pop((due, waited_page)):
                        waiter.succeed(now)
        # Push deliveries at this instant.
        for key in [key for key in self._push_waiters if key[0] == now]:
            _due, _page = key
            for waiter in self._push_waiters.pop(key):
                waiter.succeed(now)

    def demand_event(self) -> Event:
        """Event the server parks on while idle."""
        if self._demand_event is None or self._demand_event.triggered:
            self._demand_event = self.sim.event()
        return self._demand_event

    def _signal_demand(self) -> None:
        if self._demand_event is not None and not self._demand_event.triggered:
            self._demand_event.succeed()


class HybridServer:
    """Drives a :class:`HybridChannel`, sleeping through idle stretches."""

    def __init__(self, sim: Simulator, channel: HybridChannel):
        self.sim = sim
        self.channel = channel
        self.process = sim.process(self._run())

    def _run(self):
        from repro.sim.process import AnyOf

        sim = self.sim
        channel = self.channel
        while True:
            if not channel.has_demand():
                yield channel.demand_event()
                continue
            target = channel.next_interesting_time(sim.now)
            if target is None:  # pragma: no cover - demand implies a target
                continue
            if target > sim.now:
                timer = sim.timeout(target - sim.now)
                changed = channel.demand_event()
                yield AnyOf(sim, [timer, changed])
                if sim.now < target:
                    continue
            channel.deliver_at(sim.now)
