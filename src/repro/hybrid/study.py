"""The hybrid push/pull population study.

Builds a shared hybrid channel and N identical clients and measures the
population-scaling behaviour: pure push is population-independent, pull
helps dramatically at small populations and saturates at large ones.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.cache.base import PolicyContext
from repro.cache.registry import make_policy
from repro.core.disks import DiskLayout
from repro.core.programs import _multidisk_program
from repro.errors import ConfigurationError
from repro.hybrid.channel import HybridChannel, HybridServer
from repro.hybrid.client import HybridClient, HybridReport
from repro.sim.kernel import Simulator
from repro.sim.resources import Resource
from repro.sim.rng import RandomStreams
from repro.workload.mapping import LogicalPhysicalMapping
from repro.workload.trace import generate_trace
from repro.workload.zipf import ZipfRegionDistribution


def run_hybrid_population(
    num_clients: int,
    pull_threshold: float,
    *, disk_sizes: Sequence[int] = (50, 200, 250),
    delta: int = 3,
    pull_spacing: int = 4,
    access_range: int = 100,
    region_size: int = 10,
    theta: float = 0.95,
    cache_size: int = 10,
    requests_per_client: int = 300,
    think_time: float = 2.0,
    upstream_capacity: int = 1,
    upstream_latency: float = 1.0,
    seed: int = 42,
) -> List[HybridReport]:
    """Run ``num_clients`` identical hybrid clients on one channel."""
    if num_clients < 1:
        raise ConfigurationError(f"num_clients must be >= 1, got {num_clients}")
    layout = DiskLayout.from_delta(tuple(disk_sizes), delta)
    schedule = _multidisk_program(layout)
    sim = Simulator()
    channel = HybridChannel(sim, schedule, pull_spacing=pull_spacing)
    HybridServer(sim, channel)
    upstream = Resource(sim, capacity=upstream_capacity)
    streams = RandomStreams(seed)
    distribution = ZipfRegionDistribution(access_range, region_size, theta)
    probabilities = distribution.probabilities()
    mapping = LogicalPhysicalMapping(layout)

    clients = []
    for index in range(num_clients):
        context = PolicyContext(
            probability=lambda page: (
                float(probabilities[page]) if page < access_range else 0.0
            ),
            frequency=lambda page: schedule.frequency(mapping.to_physical(page)),
            disk_of=lambda page: layout.disk_of_page(mapping.to_physical(page)),
            num_disks=layout.num_disks,
        )
        clients.append(
            HybridClient(
                sim=sim,
                channel=channel,
                mapping=mapping,
                cache=make_policy("LIX", cache_size, context),
                trace=generate_trace(
                    distribution,
                    requests_per_client,
                    streams.stream(f"requests-{index}"),
                ),
                upstream=upstream,
                think_time=think_time,
                pull_threshold=pull_threshold,
                upstream_latency=upstream_latency,
                warmup_requests=max(cache_size, requests_per_client // 10),
                name=f"hybrid-{index}",
            )
        )

    for client in clients:
        sim.run_until_event(client.process)
    return [client.report for client in clients]


def hybrid_population_study(
    *, populations: Sequence[int] = (1, 2, 4, 8, 16),
    pull_threshold: float = 50.0,
    seed: int = 42,
    **scenario,
):
    """Mean response with pulls vs mute clients, across population sizes.

    Returns a :class:`~repro.experiments.figures.FigureData` with the
    push-only baseline, the hybrid response, and the pulls sent per
    client — the series behind ``benchmarks/bench_hybrid.py``.
    """
    from repro.experiments.figures import FigureData

    dedicated_push: List[float] = []
    push_only: List[float] = []
    hybrid: List[float] = []
    pulls_per_client: List[float] = []
    for population in populations:
        # A dedicated push channel: no slots reserved for pulls at all
        # (a huge pull spacing makes the reservation vanish).
        pure = run_hybrid_population(
            population, pull_threshold=math.inf, seed=seed,
            pull_spacing=1_000_000,
            **{k: v for k, v in scenario.items() if k != "pull_spacing"},
        )
        dedicated_push.append(
            sum(report.mean_response_time for report in pure) / population
        )
        mute = run_hybrid_population(
            population, pull_threshold=math.inf, seed=seed, **scenario
        )
        push_only.append(
            sum(report.mean_response_time for report in mute) / population
        )
        talk = run_hybrid_population(
            population, pull_threshold=pull_threshold, seed=seed, **scenario
        )
        hybrid.append(
            sum(report.mean_response_time for report in talk) / population
        )
        pulls_per_client.append(
            sum(report.pulls_sent for report in talk) / population
        )

    data = FigureData(
        figure="Extension: Hybrid push/pull",
        title=(
            "Population scaling with a low-bandwidth upstream "
            f"(pull threshold {pull_threshold:.0f} bu)"
        ),
        x_label="clients",
        x_values=list(populations),
    )
    data.add_series("dedicated push", dedicated_push)
    data.add_series("push only", push_only)
    data.add_series("push + pull", hybrid)
    data.add_series("pulls/client", pulls_per_client)
    return data
