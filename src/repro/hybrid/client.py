"""The hybrid client: pull when the push wait is too long.

On a cache miss the client computes the page's next push arrival.  If
the wait exceeds ``pull_threshold`` (in broadcast units) it sends a pull
request over its upstream link — a shared low-bandwidth
:class:`~repro.sim.resources.Resource` with a per-request send latency —
and then takes whichever delivery happens first (the pulled copy airs on
the shared channel, so it may even satisfy other clients' push waits).

``pull_threshold = inf`` degenerates to the paper's mute client;
``pull_threshold = 0`` pulls on every miss (pure on-demand behaviour,
bounded by the upstream and pull-slot capacity).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from repro.cache.base import CacheCounters, CachePolicy
from repro.errors import ConfigurationError
from repro.hybrid.channel import HybridChannel
from repro.sim.kernel import Simulator
from repro.sim.process import AnyOf, Process
from repro.sim.resources import Resource
from repro.sim.stats import RunningStats
from repro.workload.mapping import LogicalPhysicalMapping
from repro.workload.trace import RequestTrace


@dataclass
class HybridReport:
    """Measurements from one hybrid client."""

    response: RunningStats = field(default_factory=RunningStats)
    counters: CacheCounters = field(default_factory=CacheCounters)
    pulls_sent: int = 0
    pulls_won: int = 0  # miss resolved by the pulled copy, not the push
    warmup_requests: int = 0

    @property
    def mean_response_time(self) -> float:
        """Mean measured response time in broadcast units."""
        return self.response.mean


class HybridClient:
    """A cache-equipped client with an optional upstream pull path."""

    def __init__(
        self,
        sim: Simulator,
        channel: HybridChannel,
        mapping: LogicalPhysicalMapping,
        cache: CachePolicy,
        trace: RequestTrace,
        upstream: Resource,
        think_time: float = 2.0,
        pull_threshold: float = 0.0,
        upstream_latency: float = 1.0,
        warmup_requests: int = 0,
        name: str = "hybrid-client",
    ):
        if pull_threshold < 0:
            raise ConfigurationError(
                f"pull_threshold must be >= 0, got {pull_threshold}"
            )
        if upstream_latency < 0:
            raise ConfigurationError(
                f"upstream_latency must be >= 0, got {upstream_latency}"
            )
        self.sim = sim
        self.channel = channel
        self.mapping = mapping
        self.cache = cache
        self.trace = trace
        self.upstream = upstream
        self.think_time = think_time
        self.pull_threshold = pull_threshold
        self.upstream_latency = upstream_latency
        self.warmup_requests = warmup_requests
        self.name = name
        self.report = HybridReport()
        self.process: Process = sim.process(self._run())

    def _run(self):
        sim = self.sim
        channel = self.channel
        cache = self.cache
        report = self.report

        for index in range(len(self.trace)):
            page = self.trace[index]
            yield sim.timeout(self.think_time)
            measuring = index >= self.warmup_requests
            if not measuring:
                report.warmup_requests += 1

            if cache.lookup(page, sim.now):
                if measuring:
                    report.response.add(0.0)
                    report.counters.record_hit()
                continue

            physical = self.mapping.to_physical(page)
            issued = sim.now
            push_wait = channel.next_push_arrival(physical, sim.now) - sim.now

            if push_wait > self.pull_threshold and not math.isinf(
                self.pull_threshold
            ):
                delivery = yield from self._pull_race(physical)
                pulled = True
            else:
                yield channel.wait_for_push(physical)
                delivery = sim.now
                pulled = False

            wait = delivery - issued
            if page not in cache:
                cache.admit(page, sim.now)
            if measuring:
                report.response.add(wait)
                report.counters.record_miss(0)
                if pulled:
                    report.pulls_won += 1

        return report

    def _pull_race(self, physical: int):
        """Send a pull upstream; resolve at the first delivery of the page."""
        sim = self.sim
        channel = self.channel
        report = self.report

        # The push path is armed immediately (the broadcast keeps going
        # while we fight for the upstream link).
        push_event = channel.wait_for_push(physical)

        # Acquire the low-bandwidth upstream and spend the send latency.
        grant = self.upstream.request()
        winner = yield AnyOf(sim, [push_event, grant])
        if push_event in winner and push_event.processed:
            # The push beat even our upstream access; abandon the pull.
            if grant.processed or not self.upstream.cancel(grant):
                self.upstream.release()
            return sim.now
        yield sim.timeout(self.upstream_latency)
        self.upstream.release()
        report.pulls_sent += 1
        pull_event = channel.request_pull(physical)

        yield AnyOf(sim, [push_event, pull_event])
        return sim.now
