"""Hybrid push/pull: a low-bandwidth upstream channel (§6 future work).

The paper's clients are mute; its related-work discussion (§6) notes
that Datacycle had an upstream network and says "we intend to
investigate issues raised by allowing such upstream communication
through low-bandwidth links as part of our ongoing work".  This
subpackage builds that investigation's substrate:

* the server reserves every ``pull_spacing``-th broadcast slot for a
  **pull queue**; the remaining slots carry the ordinary cyclic push
  program (which the reservation stretches in real time);
* a client that misses may either wait for the page's next push
  appearance or send a pull request over a low-bandwidth upstream link
  (modelled with the kernel's :class:`~repro.sim.resources.Resource`)
  and take whichever delivery arrives first;
* the client pulls only when the push wait exceeds a threshold — the
  knob that trades upstream traffic against latency.

The headline phenomenon (measured in ``benchmarks/bench_hybrid.py``):
with few clients, generous pull bandwidth behaves like an on-demand
server and wins; as the client population grows the pull queue
saturates while push performance is population-independent — the
scalability argument at the heart of the broadcast-disk idea.
"""

from repro.hybrid.channel import HybridChannel, HybridServer
from repro.hybrid.client import HybridClient, HybridReport
from repro.hybrid.study import hybrid_population_study

__all__ = [
    "HybridChannel",
    "HybridClient",
    "HybridReport",
    "HybridServer",
    "hybrid_population_study",
]
