"""Fleet execution: expand homogeneous segments straight into batch runs.

:func:`run_fleet` is the batch engine's counterpart of
:func:`repro.population.run.run_population`: same spec in, same
:class:`~repro.population.run.PopulationResult` out, but homogeneous
segments (every distributed field a :class:`Constant`) with a batchable
policy skip plan expansion entirely — the whole segment becomes one
columnar engine run over a ``(steps, clients)`` trace matrix.
Multi-channel programs batch natively (the engine carries the
vectorized tuner).  Heterogeneous segments whose distributed fields all
have *finite support* (:class:`Constant` / :class:`Choice` /
:class:`UniformInt`) are **sub-segmented**: each client's parameter
draws are replayed through
:func:`~repro.population.spec.client_overrides` (preserving the
``derive_seed`` per-client identity exactly), clients with equal draws
bucket into one homogeneous sub-batch, and each bucket runs columnar.
Only continuous draws (:class:`Uniform`) or unbatchable sampled
policies still fall back to the scalar per-client path through
:func:`~repro.exec.run.execute_plan`.

Two execution regimes, two correctness contracts:

* **Columnar (exact)** — each client's trace is drawn from its own
  :func:`~repro.batch.rng.client_generator` stream (identical to the
  per-client ``RandomStreams`` draws), and the engine arithmetic is
  byte-identical to ``fast``; the folded aggregates match
  ``run_population`` exactly, modulo wall-clock fields.
* **Kernel (statistical)** — cache-less (capacity-1, always-admit
  policy) groups on an integer think time collapse further: the page →
  wait relation is a pure function of the request instant's phase in
  the broadcast period, so the whole group steps through precomputed
  ``(period, pages+1)`` wait/next-phase tables, with requests drawn in
  bulk from one group-level stream through a guide-table sampler.
  C-row programs get a tuned-channel dimension — tables become
  ``(C, lcm-period, pages+1)``, the flat state index encodes
  ``(channel, phase)``, and integral retune costs fold into the wait
  entries — so cache-less multi-channel groups keep the kernel speed.
  Per-client traces differ from the per-client path (group vs per-client
  streams), so the contract is the BENCH_population one: equal within
  sampling error.  This is the ≥100x path; force ``kernel="never"`` to
  stay exact.

Profiled, traced, or monitored runs always take the exact columnar
path, where every miss dispatches through
:meth:`~repro.core.schedule.BroadcastSchedule.next_arrival_batch` and
tier attribution reconciles (``tier_total`` == batch-engine misses).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.batch.engine import batchable_policy_name, build_columnar_engine
from repro.batch.rng import client_generators, group_generator
from repro.core.chunks import lcm_many
from repro.errors import ConfigurationError, ScheduleError
from repro.exec.build import BuildCache, structural_key
from repro.exec.plan import RunPlan
from repro.exec.run import _warmup_trace_allowance, execute_plan
from repro.obs.clock import perf_counter
from repro.obs.manifest import write_manifest
from repro.obs.monitor import MonitorContext
from repro.obs.trace import Tracer
from repro.population.aggregate import DEFAULT_GAMMA, PopulationAggregate
from repro.population.run import (
    PopulationResult,
    _record_population_metrics,
    build_population_manifest,
)
from repro.population.spec import (
    _INT_FIELDS,
    Choice,
    Constant,
    PopulationSpec,
    SegmentSpec,
    UniformInt,
    client_config,
    client_overrides,
)
from repro.workload.mapping import LogicalPhysicalMapping

__all__ = ["run_fleet"]

#: Kernel phase tables are ``(period, access_range + 1)`` int32 pairs;
#: groups whose tables would exceed this many entries take the general
#: columnar path instead (the paper-scale D5 period of 11,500 slots
#: with a 1,000-page range is ~11.5M entries — above this cap).
KERNEL_TABLE_ENTRIES = 4_000_000

#: Guide-table bins for the bulk categorical sampler (2**12): small
#: enough to live in L1 yet wide enough that for paper-scale page
#: counts nearly every bin spans a single page and the refine loop
#: runs at most once or twice.
_GUIDE_BINS = 4096
_GUIDE_SHIFT = 32 - 12

#: Always-admit capacity-1 policies: the resident page is exactly the
#: previously-requested page, so hits are ``pages[t] == pages[t-1]``.
#: P/PIX can decline an admit and are excluded.
_KERNEL_POLICIES = frozenset({"lru", "lix", "l"})


class _KernelBlock:
    """A kernel group's per-client summaries, kept columnar.

    Folded into the aggregates via
    :meth:`~repro.population.aggregate.PopulationAggregate.add_mean_block`
    — materialising a Python object per client would cost more than the
    kernel run.
    """

    __slots__ = ("means", "hit_rates", "measured_each", "warmup_each")

    def __init__(self, means, hit_rates, measured_each, warmup_each):
        self.means = means
        self.hit_rates = hit_rates
        self.measured_each = measured_each
        self.warmup_each = warmup_each


class _FleetClientStats:
    """The slice of an ExperimentResult the population fold consumes."""

    __slots__ = (
        "mean_response_time", "measured_requests", "warmup_requests",
        "hit_rate", "wall_seconds",
    )

    def __init__(self, mean_response_time, measured_requests,
                 warmup_requests, hit_rate):
        self.mean_response_time = mean_response_time
        self.measured_requests = measured_requests
        self.warmup_requests = warmup_requests
        self.hit_rate = hit_rate
        self.wall_seconds = 0.0


def _group_config(spec: PopulationSpec, segment: SegmentSpec):
    """The shared config of a homogeneous segment, or None.

    A segment is homogeneous when every distributed field is a
    :class:`Constant`; the values are coerced exactly as
    :func:`~repro.population.spec.client_config` coerces sampled ones.
    """
    overrides: Dict[str, object] = {}
    for field_name, distribution in segment.distributions().items():
        if not isinstance(distribution, Constant):
            return None
        value = distribution.value
        if field_name in _INT_FIELDS:
            value = int(value)
        elif field_name != "policy":
            value = float(value)
        overrides[field_name] = value
    return spec.base.with_(
        label=f"{spec.name}/{segment.name}", **overrides
    )


#: Distributions with finite support: a heterogeneous segment drawing
#: only from these has a bounded set of distinct client identities and
#: can be sub-segmented into homogeneous buckets.
_FINITE_DISTRIBUTIONS = (Constant, Choice, UniformInt)


def _sub_segments(
    spec: PopulationSpec, segment: SegmentSpec, indices: range
) -> Optional[List[Tuple[object, List[int]]]]:
    """Deterministic sub-segmentation of a finite-support segment.

    Replays every client's parameter draws through
    :func:`~repro.population.spec.client_overrides` — the exact
    ``derive_seed``-rooted streams the per-client path consumes, so
    each client keeps its fleet-size-independent identity — and buckets
    clients with equal draws into ``(shared config, client indices)``
    groups, ordered by first appearance.  Returns ``None`` when any
    distributed field has continuous support (:class:`Uniform` draws
    are almost surely all distinct, so bucketing buys nothing).

    Bucket configs share the segment-level label (per-client labels and
    seeds are reattached by the columnar path's own per-client streams)
    and bucket clients need not be contiguous — the columnar group
    runner indexes clients individually.
    """
    distributions = segment.distributions().values()
    if not all(isinstance(d, _FINITE_DISTRIBUTIONS) for d in distributions):
        return None
    members: "OrderedDict[Tuple, List[int]]" = OrderedDict()
    sampled: Dict[Tuple, Dict[str, object]] = {}
    for client in indices:
        overrides = client_overrides(spec, segment, client)
        key = tuple(sorted(overrides.items()))
        bucket = members.get(key)
        if bucket is None:
            members[key] = [client]
            sampled[key] = overrides
        else:
            bucket.append(client)
    return [
        (
            spec.base.with_(
                label=f"{spec.name}/{segment.name}", **sampled[key]
            ),
            clients,
        )
        for key, clients in members.items()
    ]


# ---------------------------------------------------------------------------
# The phase-table kernel
# ---------------------------------------------------------------------------

def _kernel_eligible(config) -> bool:
    """Whether a homogeneous group can take the phase-table kernel.

    Requires: no cache to model (capacity 1 with an always-admit
    policy, so residency is just the last request), integral client
    clocks (integer think time), a static workload (no drift), and one
    shared mapping (no noise) — plus the default warm-up protocol, so
    warm-up is exactly the first request.
    """
    if config.cache_size != 1:
        return False
    if batchable_policy_name(config.policy) not in _KERNEL_POLICIES:
        return False
    if config.warmup_requests is not None or config.extra_warmup:
        return False
    if config.drift_rotations or config.noise > 0.0:
        return False
    if getattr(config, "channels", 1) > 1 and not float(
            getattr(config, "retune_cost", 1.0)).is_integer():
        # The tuned-channel tables fold the retune penalty into integer
        # wait entries; fractional costs take the general columnar path.
        return False
    return float(config.think_time).is_integer()


def _phase_tables(schedule, physical: np.ndarray, think: int,
                  retune: int = 0):
    """Wait and next-phase tables over (request phase, requested page).

    For a request issued at integral time ``t`` with phase ``s = t mod
    period``, the wait for logical page ``l`` is ``Wt[s, l]`` and the
    client's next phase (pre-multiplied by the table width for direct
    flat indexing) is ``Pt[s, l]``.  Column ``access_range`` is the
    dummy *hit* column: zero wait, phase advanced by think only.  The
    think time is folded into the tables, so the step loop is pure
    table lookups.  Exact for any periodic schedule — a broadcast page's
    completions repeat with the period, no fixed-gap structure needed.

    C-row programs dispatch to :func:`_phase_tables_program`, which
    adds a tuned-channel dimension to the same flat encoding.
    """
    if getattr(schedule, "num_channels", 1) > 1:
        return _phase_tables_program(schedule, physical, think, retune)
    period = schedule.period
    pages = len(physical)
    width = pages + 1
    slots = np.arange(period, dtype=np.int32)
    shifted = (slots + think) % period
    waits = np.empty((period, width), dtype=np.int32)
    phases = np.empty((period, width), dtype=np.int32)

    # Fixed-gap pages (all of them, on flat-disk schedules) fill their
    # columns in one broadcasted closed form: completions of page ``l``
    # sit at instants ≡ residue (mod gap), so the wait from integral
    # phase ``s`` is ``1 + (residue - s - 1) mod gap``.
    residue_all, gap_all = schedule.regular_timing()
    in_range = physical < len(gap_all)
    regular = np.zeros(pages, dtype=bool)
    regular[in_range] = gap_all[physical[in_range]] > 0
    if regular.all():
        residue = residue_all[physical].astype(np.int32)
        gap = gap_all[physical].astype(np.int32)
        body = waits[:, :pages]
        np.subtract(residue[None, :], shifted[:, None] + 1, out=body)
        np.mod(body, gap[None, :], out=body)
        body += 1
    elif regular.any():
        residue = residue_all[physical[regular]].astype(np.int32)
        gap = gap_all[physical[regular]].astype(np.int32)
        waits[:, :pages][:, regular] = (
            1 + np.mod(residue[None, :] - shifted[:, None] - 1,
                       gap[None, :])
        )
    for logical in np.flatnonzero(~regular):
        # Irregular spacing: exact per-page occurrence search.  A page
        # missing from the broadcast raises ScheduleError here, which
        # the kernel caller treats as "take the general path".
        occurrences = schedule.occurrences(int(physical[logical]))
        bounds = np.concatenate([occurrences, occurrences[:1] + period])
        waits[:, logical] = (
            1 + bounds[np.searchsorted(occurrences, shifted, side="left")]
            - shifted
        )
    body = phases[:, :pages]
    np.add(shifted[:, None], waits[:, :pages], out=body)
    np.mod(body, period, out=body)
    body *= width
    waits[:, pages] = 0
    phases[:, pages] = shifted * width
    return waits.ravel(), phases.ravel(), width


def _phase_tables_program(program, physical: np.ndarray, think: int,
                          retune: int):
    """Per-channel phase tables for a C-row broadcast program.

    The client state gains the tuned channel, so the tables are
    ``(C, P, pages+1)`` with ``P`` the lcm of the row periods; the flat
    state index is ``(channel * P + phase) * width``, and the initial
    state ``0`` is channel 0 at phase 0 — exactly the scalar tuner's
    starting point, so the step loop is unchanged.  A miss for a page
    on another channel pays the (integral) ``retune`` cost before
    listening: its wait entry is ``r + 1 + (residue - s - r - 1) mod
    gap`` and its next state lands on the page's channel.  Hits keep
    the tuned channel.  Waits are measured from the request instant,
    matching the scalar loop's ``arrival - now``.
    """
    rows = program.channels
    num_channels = len(rows)
    period = lcm_many([row.period for row in rows])
    pages = len(physical)
    width = pages + 1
    slots = np.arange(period, dtype=np.int64)
    shifted = (slots + think) % period
    waits = np.empty((num_channels, period, width), dtype=np.int32)
    phases = np.empty((num_channels, period, width), dtype=np.int32)

    residue_all, gap_all = program.regular_timing()
    size = len(gap_all)
    clipped = np.clip(physical, 0, size - 1)
    gaps = gap_all[clipped]
    regular = (physical == clipped) & (physical >= 0) & (gaps > 0)
    page_channel = np.where(regular, program.channel_array()[clipped], 0)
    residue = residue_all[clipped]
    safe_gaps = np.where(regular, gaps, 1)

    # Irregular pages: the owning row's exact occurrence search, built
    # once per page as a wait-by-listen-phase lookup over the row
    # period.  A page absent from the program raises ScheduleError in
    # ``schedule_of``, which the kernel caller treats as "take the
    # general path".
    irregular = {}
    for logical in np.flatnonzero(~regular):
        page = int(physical[logical])
        row = program.schedule_of(page)
        page_channel[logical] = program.channel_of(page)
        occurrences = row.occurrences(page)
        bounds = np.concatenate([occurrences, occurrences[:1] + row.period])
        srange = np.arange(row.period, dtype=np.int64)
        irregular[int(logical)] = (
            1 + bounds[np.searchsorted(occurrences, srange, side="left")]
            - srange,
            row.period,
        )

    for channel in range(num_channels):
        cost = np.where(page_channel == channel, 0, retune)
        listen = shifted[:, None] + cost[None, :]
        wait = cost[None, :] + 1 + np.mod(
            residue[None, :] - listen - 1, safe_gaps[None, :]
        )
        for logical, (by_phase, row_period) in irregular.items():
            wait[:, logical] = cost[logical] + by_phase[
                (shifted + cost[logical]) % row_period
            ]
        waits[channel, :, :pages] = wait
        phases[channel, :, :pages] = (
            page_channel[None, :] * period + (shifted[:, None] + wait) % period
        ) * width
        waits[channel, :, pages] = 0
        phases[channel, :, pages] = (channel * period + shifted) * width
    return waits.ravel(), phases.ravel(), width


def _bulk_sampler(probabilities: np.ndarray):
    """A uint32 guide-table sampler exact to one part in 2**32.

    Thresholds are ``ceil(cdf * 2**32)``; a draw ``u`` maps to the
    first page whose threshold exceeds it.  The top threshold is
    exactly 2**32 — one past the uint32 range — so the comparison is
    phrased against ``threshold - 1`` (``u > thr-1`` ⟺ ``u >= thr``),
    which stays in uint32.  A 8192-bin guide table bounds the refine
    loop by the widest page span any bin crosses.
    """
    cdf = np.cumsum(np.asarray(probabilities, dtype=np.float64))
    cdf[-1] = 1.0
    thresholds = np.ceil(cdf * float(2 ** 32)).astype(np.uint64)
    thresholds[-1] = 2 ** 32
    upper_inclusive = (thresholds - 1).astype(np.uint32)
    bin_starts = np.arange(_GUIDE_BINS, dtype=np.uint64) << _GUIDE_SHIFT
    # int16 pages: the kernel's table budget caps the page count far
    # below 2**15 (tables are at least pages**2 entries), and halving
    # the page matrix keeps the bulk passes in memory bandwidth.
    guide = np.searchsorted(thresholds, bin_starts, side="right").astype(
        np.int16
    )
    # Widest page range reachable from any bin's starting guess.
    ceilings = np.empty(_GUIDE_BINS, dtype=np.int16)
    ceilings[:-1] = guide[1:]
    ceilings[-1] = len(thresholds) - 1
    refine_steps = int((ceilings - guide).max())

    def sample(u32: np.ndarray) -> np.ndarray:
        candidate = guide.take(u32 >> np.uint32(_GUIDE_SHIFT))
        for _ in range(refine_steps):
            np.add(
                candidate,
                u32 > upper_inclusive.take(candidate),
                out=candidate,
                casting="unsafe",
            )
        return candidate

    return sample


#: Phase tables and samplers are pure functions of a handful of config
#: fields, so repeated runs over the same design point (benchmark arms,
#: validation sweeps) reuse them instead of rebuilding.  Entries are a
#: couple of MB each; a small LRU bounds the footprint.
_KERNEL_CACHE_ENTRIES = 8
_table_cache: "OrderedDict[Tuple, Tuple]" = OrderedDict()
_sampler_cache: "OrderedDict[Tuple, object]" = OrderedDict()

#: Layouts and schedules are immutable after construction, so fleet
#: runs share them process-wide rather than rebuilding per call — a
#: multi-channel program's conflict-aware channel assignment costs more
#: than the kernel run it feeds.  Same bounded-LRU discipline as the
#: table caches above.
_build_cache: "OrderedDict[Tuple, Tuple]" = OrderedDict()


def _layout_and_schedule(config):
    """Process-wide memoised ``(layout, schedule)`` for ``config``."""

    def build():
        layout = config.build_layout()
        return layout, config.build_schedule(layout)

    return _cached(_build_cache, structural_key(config), build)


def _cached(cache: OrderedDict, key: Tuple, build):
    entry = cache.get(key)
    if entry is None:
        entry = build()
        cache[key] = entry
        if len(cache) > _KERNEL_CACHE_ENTRIES:
            cache.popitem(last=False)
    else:
        cache.move_to_end(key)
    return entry


def _run_group_kernel(
    spec, indices, config, schedule, layout,
) -> Optional[_KernelBlock]:
    """Run one cache-less homogeneous group through the phase tables.

    Returns ``None`` when the schedule disqualifies itself (a requested
    page absent from the broadcast, or tables over budget) — the caller
    then takes the general columnar path.
    """
    access_range = config.access_range
    num_channels = getattr(schedule, "num_channels", 1)
    if num_channels > 1:
        states = num_channels * lcm_many(
            [row.period for row in schedule.channels]
        )
        retune = int(getattr(config, "retune_cost", 1.0))
    else:
        states = schedule.period
        retune = 0
    if states * (access_range + 1) > KERNEL_TABLE_ENTRIES:
        return None
    think = int(config.think_time)
    table_key = (structural_key(config), config.offset, access_range, think)

    def build_tables():
        physical = (
            config.build_mapping(layout).physical_array()[:access_range]
        )
        return _phase_tables(schedule, physical, think, retune)

    try:
        waits, phases, width = _cached(_table_cache, table_key, build_tables)
    except ScheduleError:
        return None

    clients = len(indices)
    steps = config.num_requests + _warmup_trace_allowance(config)
    generator = group_generator(spec.seed, indices.start, "requests")
    sample = _cached(
        _sampler_cache,
        (access_range, config.region_size, config.theta),
        lambda: _bulk_sampler(config.build_distribution().probabilities()),
    )
    # PCG64 emits 64 bits natively; one u64 draw split into two u32
    # halves costs half of what two u32 draws do.
    total_draws = steps * clients
    raw = generator.integers(0, 2 ** 64, size=(total_draws + 1) // 2,
                             dtype=np.uint64)
    draws = raw.view(np.uint32)[:total_draws].reshape(steps, clients)
    pages = sample(draws)

    # Capacity-1 always-admit residency: a request hits iff it repeats
    # the previous request.  Step 0 is the warm-up request (the cache
    # is empty, so it always misses and is never measured).
    hits = pages[1:] == pages[:-1]
    lookups = np.where(hits, np.int16(access_range), pages[1:])

    measured = steps - 1
    phase = np.zeros(clients, dtype=np.int32)
    index = np.empty(clients, dtype=np.int32)
    # Per-step waits land in rows of one matrix and fold in a single
    # bulk sum afterwards — three array ops per step, not four.
    wait_rows = np.empty((measured, clients), dtype=np.int32)

    np.add(phase, pages[0], out=index, casting="unsafe")
    phases.take(index, out=phase, mode="clip")
    for step, row in enumerate(lookups):
        np.add(phase, row, out=index, casting="unsafe")
        waits.take(index, out=wait_rows[step], mode="clip")
        phases.take(index, out=phase, mode="clip")
    wait_total = wait_rows.sum(axis=0, dtype=np.int64)

    means = wait_total / measured
    hit_rates = hits.sum(axis=0, dtype=np.int64) / measured
    return _KernelBlock(means, hit_rates, measured_each=measured,
                        warmup_each=1)


# ---------------------------------------------------------------------------
# The exact columnar group path
# ---------------------------------------------------------------------------

def _group_traces(spec, indices, config, total: int) -> np.ndarray:
    """Per-client trace columns, drawn from the per-client streams.

    Column ``c`` is byte-identical to the trace ``execute_plan`` would
    draw for client ``indices[c]``'s config — that is what makes the
    columnar path's results match ``run_population`` exactly.
    """
    pages = np.empty((total, len(indices)), dtype=np.int64)
    distribution = config.build_distribution()
    drift = config.build_drift(total) if config.drift_rotations else None
    generators = client_generators(spec.seed, indices, "requests")
    for column, generator in enumerate(generators):
        if drift is not None:
            pages[:, column] = drift.generate_trace(total, generator).pages
        else:
            pages[:, column] = distribution.sample(generator, total)
    return pages


def _group_physical(spec, indices, config, layout) -> np.ndarray:
    """Logical→physical rows: shared when noise-free, per-client else."""
    if config.noise <= 0.0:
        return config.build_mapping(layout).physical_array()[None, :]
    scope = None if config.noise_over_full_database else config.access_range
    physical = np.empty((len(indices), layout.total_pages), dtype=np.int64)
    generators = client_generators(spec.seed, indices, "noise")
    for column, generator in enumerate(generators):
        mapping = LogicalPhysicalMapping(
            layout=layout,
            offset=config.offset,
            noise=config.noise,
            rng=generator,
            noise_scope=scope,
        )
        physical[column] = mapping.physical_array()
    return physical


def _run_group_columnar(
    spec, segment, indices, config, schedule, layout, *,
    tracer=None, profile=None, monitors=None,
) -> List[_FleetClientStats]:
    """Run one homogeneous group through the exact columnar engine."""
    clients = len(indices)
    monitoring = monitors is not None and monitors.enabled
    effective_tracer = tracer
    attached_to_caller = False
    if monitoring:
        monitors.begin_run(MonitorContext(
            label=config.describe(),
            schedule=schedule,
            cache_capacity=config.cache_size if config.has_cache else None,
        ))
        if tracer is not None and tracer.enabled:
            tracer.add_sink(monitors)
            attached_to_caller = True
        else:
            effective_tracer = Tracer(monitors)

    labels: Optional[Sequence[str]] = None
    if (effective_tracer is not None and effective_tracer.enabled
            and clients > 1):
        labels = [
            f"{spec.name}/{segment.name}/client{client}"
            for client in indices
        ]

    engine = build_columnar_engine(
        config, schedule, layout,
        _group_physical(spec, indices, config, layout), clients,
    )
    if engine is None:  # pragma: no cover - callers pre-check the policy
        raise ConfigurationError(
            f"policy {config.policy!r} has no columnar formulation"
        )
    total = config.num_requests + _warmup_trace_allowance(config)
    pages = _group_traces(spec, indices, config, total)

    profiling = profile is not None and profile.enabled
    if profiling:
        schedule.enable_timing_counters()
        queries_before = schedule.timing_queries()
        profile.stop_phase("build")
        profile.start_phase("run")
    try:
        outcome = engine.run(
            pages,
            warmup_requests=config.warmup_requests,
            extra_warmup=config.extra_warmup,
            tracer=effective_tracer,
            profile=profile,
            client_labels=labels,
        )
    finally:
        if profiling:
            profile.stop_phase("run")
            profile.start_phase("build")
        if attached_to_caller:
            tracer.remove_sink(monitors)
    if profiling:
        queries_after = schedule.timing_queries()
        profile.add_tier_counts({
            tier: queries_after[tier] - queries_before[tier]
            for tier in queries_after
        })
        profile.count("requests.measured", int(outcome.count.sum()))
        profile.count("requests.warmup", int(outcome.warmup_seen.sum()))
    if monitoring:
        monitors.end_run()  # raises MonitorError in strict mode

    if not outcome.count.all():
        raise ConfigurationError(
            f"warm-up consumed the whole trace for {config.describe()}; "
            "increase num_requests or lower cache_size"
        )
    return [
        _FleetClientStats(
            mean_response_time=float(outcome.mean[column]),
            measured_requests=int(outcome.count[column]),
            warmup_requests=int(outcome.warmup_seen[column]),
            hit_rate=outcome.hit_rate(column),
        )
        for column in range(clients)
    ]


# ---------------------------------------------------------------------------
# The fleet entry point
# ---------------------------------------------------------------------------

def run_fleet(
    spec: PopulationSpec,
    *,
    gamma: float = DEFAULT_GAMMA,
    tracer=None,
    metrics=None,
    manifest: Optional[str] = None,
    profile=None,
    monitors=None,
    kernel: str = "auto",
) -> PopulationResult:
    """Simulate ``spec`` through the batch engine and return its rollup.

    Homogeneous segments with a batchable policy run as columnar
    groups (multi-channel programs included — the engine carries the
    vectorized tuner); heterogeneous segments with finite-support
    draws are sub-segmented into homogeneous buckets that run columnar
    too; everything else falls back to per-client ``fast`` plans (the
    results are identical either way, so mixed fleets stay
    consistent).  ``kernel`` selects the cache-less fast path:
    ``"auto"`` (default) uses it where eligible and no observability
    hook is enabled, ``"never"`` forces the exact columnar path
    everywhere — useful when a fleet must fold byte-identically to
    :func:`~repro.population.run.run_population`.
    """
    if kernel not in ("auto", "never"):
        raise ConfigurationError(
            f"kernel must be 'auto' or 'never', got {kernel!r}"
        )
    started = perf_counter()
    profiling = profile is not None and profile.enabled
    monitoring = monitors is not None and monitors.enabled
    tracing = tracer is not None and tracer.enabled
    builds = BuildCache()  # per-client plan fallbacks within this run
    client_stats: List[object] = [None] * spec.num_clients
    kernel_blocks: Dict[int, _KernelBlock] = {}

    def run_group(segment, clients, config, *, allow_kernel):
        """One homogeneous group (or bucket): kernel when allowed, else
        the exact columnar engine; results land in ``client_stats``."""
        if profiling:
            profile.start_phase("build")
        layout, schedule = _layout_and_schedule(config)
        block = None
        if (allow_kernel and kernel == "auto" and not profiling
                and not monitoring and not tracing
                and _kernel_eligible(config)):
            block = _run_group_kernel(
                spec, clients, config, schedule, layout
            )
        if block is None:
            stats = _run_group_columnar(
                spec, segment, clients, config, schedule, layout,
                tracer=tracer, profile=profile, monitors=monitors,
            )
            for client, per_client in zip(clients, stats):
                client_stats[client] = per_client
        if profiling:
            profile.stop_phase("build")
        return block

    def run_scalar(segment, clients):
        """The scalar per-client path.  ``fast`` rather than
        ``spec.engine`` — a single-client batch run is byte-identical
        to fast, only slower."""
        for client in clients:
            plan = RunPlan(
                config=client_config(spec, segment, client),
                engine="fast",
                collect_responses=False,
                index=client,
            )
            client_stats[client] = execute_plan(
                plan, tracer=tracer, builds=builds,
                profile=profile, monitors=monitors,
            )

    for position, (segment, indices) in enumerate(spec.segment_ranges()):
        config = _group_config(spec, segment)
        if config is not None and batchable_policy_name(config.policy):
            block = run_group(segment, indices, config, allow_kernel=True)
            if block is not None:
                kernel_blocks[position] = block
            continue
        buckets = None if config is not None else _sub_segments(
            spec, segment, indices
        )
        if buckets is not None:
            # Sub-segmented heterogeneous fleet: every bucket is
            # homogeneous by construction and always takes the *exact*
            # columnar path (never the kernel), so results stay
            # byte-identical to the per-client plan path.
            for bucket_config, bucket_clients in buckets:
                if batchable_policy_name(bucket_config.policy):
                    run_group(
                        segment, bucket_clients, bucket_config,
                        allow_kernel=False,
                    )
                else:
                    run_scalar(segment, bucket_clients)
            continue
        # Continuous draws or an unbatchable shared policy: the scalar
        # per-client path.
        run_scalar(segment, indices)

    if profiling:
        profile.start_phase("aggregate")
    # Same plan-order fold as ``fold_results``; kernel groups fold as
    # whole blocks, everything else client by client.
    overall = PopulationAggregate(gamma)
    per_segment: Dict[str, PopulationAggregate] = {}
    for position, (segment, indices) in enumerate(spec.segment_ranges()):
        aggregate = PopulationAggregate(gamma)
        block = kernel_blocks.get(position)
        if block is not None:
            for target in (aggregate, overall):
                target.add_mean_block(
                    block.means, block.hit_rates,
                    block.measured_each, block.warmup_each,
                )
        else:
            for client in indices:
                aggregate.add_result(client_stats[client])
                overall.add_result(client_stats[client])
        per_segment[segment.name] = aggregate
    population = PopulationResult(
        spec=spec,
        overall=overall,
        segments=per_segment,
        wall_seconds=perf_counter() - started,
    )
    if metrics is not None:
        _record_population_metrics(metrics, population)
    if manifest is not None:
        population.manifest = build_population_manifest(
            population, metrics=metrics, tracer=tracer,
            profile=profile, monitors=monitors,
        )
        write_manifest(population.manifest, manifest)
    if profiling:
        profile.stop_phase("aggregate")
    return population
