"""Seeded array-RNG gateway for the columnar batch engine.

Every :class:`numpy.random.Generator` used by the batch layer is minted
here, seeded through :func:`repro.exec.plan.derive_seed` so that client
``index`` in a fleet draws from *exactly* the same stream whether it is
simulated by a per-client :class:`~repro.sim.rng.RandomStreams` run or a
columnar batch run.  The entropy recipe below is deliberately identical
to :meth:`RandomStreams.stream <repro.sim.rng.RandomStreams.stream>`:
``(seed, digest-sum, *digest-bytes)`` fed to a
:class:`numpy.random.SeedSequence`.

The lint rule RL010 recognises this construction — a ``Generator`` built
from an explicitly-seeded ``SeedSequence`` — as a blessed gateway, so
callers receiving these generators are not flagged as consuming
unmanaged randomness.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Tuple

import numpy as np

from repro.exec.plan import derive_seed

__all__ = [
    "stream_entropy",
    "seeded_generator",
    "client_generator",
    "client_generators",
    "group_generator",
]


def stream_entropy(seed: int, name: str) -> Tuple[int, ...]:
    """Entropy tuple matching ``RandomStreams(seed).stream(name)``."""

    digest = np.frombuffer(name.encode("utf-8"), dtype=np.uint8)
    return (int(seed), int(digest.sum()), *digest.tolist())


def seeded_generator(seed: int, name: str) -> np.random.Generator:
    """Mint a named, explicitly-seeded generator.

    Identical to the stream that ``RandomStreams(seed).stream(name)``
    returns: same entropy, same PCG64 state, same draws.
    """

    entropy = stream_entropy(seed, name)
    return np.random.Generator(np.random.PCG64(np.random.SeedSequence(entropy)))


def client_generator(root_seed: int, index: int, name: str) -> np.random.Generator:
    """The stream client ``index`` of a fleet would see in a per-client run.

    ``derive_seed`` gives the client its fleet-size-independent seed;
    the returned generator then matches
    ``RandomStreams(derive_seed(root_seed, index)).stream(name)`` draw
    for draw, which is what makes batch traces byte-identical to the
    per-client path.
    """

    return seeded_generator(derive_seed(root_seed, index), name)


def client_generators(
    root_seed: int, indices: Iterable[int], name: str
) -> Iterator[np.random.Generator]:
    """One :func:`client_generator` per index, in order.

    ``indices`` may be any index sequence — a contiguous ``range`` for
    a homogeneous segment or the scattered index list of a
    sub-segmented bucket; each client's stream depends only on its own
    global index, never on its neighbours in the batch.
    """

    for index in indices:
        yield client_generator(root_seed, index, name)


def group_generator(root_seed: int, start_index: int, name: str) -> np.random.Generator:
    """A group-level stream for whole-fleet array draws.

    Used by the phase-table kernel, where per-client streams would cost
    more than the simulation itself.  The ``batch.`` prefix keeps the
    stream disjoint from every per-client stream name, so group draws
    never collide with (or replay) per-client draws.
    """

    return seeded_generator(derive_seed(root_seed, start_index), f"batch.{name}")
