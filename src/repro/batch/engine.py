"""The general columnar engine: N clients advanced per request step.

Every per-client scalar of the fast engine's loop becomes a length-N
array here — clock, warm-up state, Welford accumulators, hit/miss
counters — and every cache decision goes through the columnar policies
in :mod:`repro.cache.batched`.  The per-step arithmetic replicates
:meth:`repro.experiments.engine.FastEngine._run_trace_traced` operation
for operation (same Welford update order, same closed-form clock
arithmetic via :meth:`~repro.core.schedule.BroadcastSchedule.
next_arrival_batch`), which is what makes a single-client batch run
**byte-identical** to the ``fast`` engine — the correctness gate
``scripts/batch_smoke.py`` and ``tests/test_batch_engine.py`` enforce.

Multi-channel programs run natively: the engine carries a per-client
tuned-channel column and applies the single-frequency tuner as array
ops — on each miss the target channel is looked up in the program's
dense ``channel_array``, retune costs are added where the target
differs, and retune counters accumulate per client — replicating
``FastEngine._run_trace_multichannel`` per client, including the
``client.retune`` trace record between miss and wait.

Tracing: with one client the emitted record stream is identical to the
fast engine's (``client.*`` from the engine, ``cache.*`` in
:class:`~repro.cache.base.TracedCache`'s vocabulary).  With many
clients every record additionally carries a ``client`` label so the
invariant monitors can key their per-stream state per client.

Profiling: every miss dispatches through ``next_arrival_batch``, whose
bulk closed-form accounting plus per-element fallback keeps the tier
attribution exact — ``tier_total`` still equals the engine's miss count
in batch mode (asserted in CI).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.cache.base import CacheCounters
from repro.cache.batched import (
    BATCHABLE_POLICIES,
    FREE,
    BatchedOracles,
    BatchedPolicy,
    make_batched_policy,
)
from repro.core.disks import DiskLayout
from repro.core.schedule import BroadcastSchedule
from repro.errors import ConfigurationError
from repro.sim.stats import RunningStats

__all__ = [
    "BatchOutcome",
    "ColumnarEngine",
    "batchable_policy_name",
    "build_columnar_engine",
    "disk_index_array",
    "frequency_array",
]


def batchable_policy_name(policy: str) -> Optional[str]:
    """Normalised policy name if it has a columnar form, else ``None``."""
    name = policy.strip().lower()
    return name if name in BATCHABLE_POLICIES else None


def frequency_array(schedule: BroadcastSchedule) -> np.ndarray:
    """Broadcast frequency per physical page (0.0 for absent pages)."""
    size = max(schedule.pages, default=0) + 1
    frequency = np.zeros(size, dtype=np.float64)
    for page in schedule.pages:
        frequency[page] = schedule.frequency(page)
    return frequency


def disk_index_array(layout: DiskLayout) -> np.ndarray:
    """0-based disk of each physical page, as a dense lookup array."""
    sizes = [stop - start for start, stop in layout.disk_ranges()]
    return np.repeat(np.arange(len(sizes), dtype=np.int64), sizes)


@dataclass
class BatchOutcome:
    """Columnar measurements: one column per client."""

    count: np.ndarray
    mean: np.ndarray
    m2: np.ndarray
    minimum: np.ndarray
    maximum: np.ndarray
    hits: np.ndarray
    misses: np.ndarray
    per_disk_misses: np.ndarray
    warmup_seen: np.ndarray
    final_time: np.ndarray
    samples: Optional[List[float]] = None
    #: Measured-phase channel switches per client (zeros on
    #: single-channel runs, matching the scalar engines).
    retunes: Optional[np.ndarray] = None

    @property
    def num_clients(self) -> int:
        return len(self.count)

    def hit_rate(self, client: int) -> float:
        """Measured-phase hit rate of one client."""
        requests = int(self.hits[client] + self.misses[client])
        return float(self.hits[client]) / requests if requests else 0.0

    def to_engine_outcome(self, client: int = 0):
        """One client's column as a scalar-engine ``EngineOutcome``.

        For a single-client run the result is byte-identical to what
        ``FastEngine.run_trace`` returns for the same trace.
        """
        from repro.experiments.engine import EngineOutcome

        response = RunningStats()
        response.count = int(self.count[client])
        response._mean = float(self.mean[client])
        response._m2 = float(self.m2[client])
        response.minimum = float(self.minimum[client])
        response.maximum = float(self.maximum[client])
        counters = CacheCounters(
            hits=int(self.hits[client]),
            misses=int(self.misses[client]),
            per_disk_misses={
                disk: int(self.per_disk_misses[disk, client])
                for disk in range(self.per_disk_misses.shape[0])
                if self.per_disk_misses[disk, client]
            },
        )
        return EngineOutcome(
            response=response,
            counters=counters,
            measured_requests=response.count,
            warmup_requests=int(self.warmup_seen[client]),
            final_time=float(self.final_time[client]),
            samples=self.samples,
            retunes=(
                0 if self.retunes is None else int(self.retunes[client])
            ),
        )


class ColumnarEngine:
    """Lockstep request stepping over one shared broadcast schedule."""

    def __init__(
        self,
        schedule: BroadcastSchedule,
        policy: BatchedPolicy,
        physical: np.ndarray,
        disk_of: np.ndarray,
        num_disks: int,
        think_time: float,
        *,
        channel_of: Optional[np.ndarray] = None,
        num_channels: int = 1,
        retune_cost: float = 1.0,
    ):
        if think_time < 0:
            raise ConfigurationError(
                f"think_time must be >= 0, got {think_time}"
            )
        if retune_cost < 0:
            raise ConfigurationError(
                f"retune_cost must be >= 0, got {retune_cost}"
            )
        physical = np.asarray(physical, dtype=np.int64)
        if physical.ndim != 2:
            raise ConfigurationError(
                "physical must be a (clients, pages) or (1, pages) matrix"
            )
        if physical.shape[0] not in (1, policy.num_clients):
            raise ConfigurationError(
                f"physical has {physical.shape[0]} rows for "
                f"{policy.num_clients} clients"
            )
        self.schedule = schedule
        self.policy = policy
        self.physical = physical
        self.disk_of = np.asarray(disk_of, dtype=np.int64)
        self.num_disks = num_disks
        self.think_time = float(think_time)
        #: Dense page -> channel lookup for C-row programs; ``None``
        #: keeps the single-channel loop free of tuner arithmetic.
        self.channel_of = (
            None if channel_of is None
            else np.asarray(channel_of, dtype=np.int64)
        )
        self.num_channels = int(num_channels)
        self.retune_cost = float(retune_cost)

    def _physical_of(self, rows: np.ndarray, pages: np.ndarray) -> np.ndarray:
        if self.physical.shape[0] == 1:
            return self.physical[0, pages]
        return self.physical[rows, pages]

    def run(
        self,
        pages: np.ndarray,
        *,
        warmup_requests: Optional[int] = None,
        extra_warmup: int = 0,
        collect_responses: bool = False,
        tracer=None,
        profile=None,
        client_labels: Optional[Sequence[str]] = None,
    ) -> BatchOutcome:
        """Advance every client through its trace column.

        ``pages`` is a ``(steps, clients)`` matrix of logical page ids —
        column ``c`` is client ``c``'s request trace.  The warm-up rule
        is the fast engine's: a fixed ``warmup_requests`` count when
        given, else each client individually warms until its cache is
        full plus ``extra_warmup`` further requests.
        """
        pages = np.asarray(pages, dtype=np.int64)
        if pages.ndim != 2:
            raise ConfigurationError(
                "pages must be a (steps, clients) matrix"
            )
        steps, clients = pages.shape
        policy = self.policy
        if clients != policy.num_clients:
            raise ConfigurationError(
                f"trace has {clients} columns for {policy.num_clients} clients"
            )
        schedule = self.schedule
        think = self.think_time
        emit = tracer is not None and tracer.enabled
        if client_labels is not None and len(client_labels) != clients:
            raise ConfigurationError(
                f"{len(client_labels)} labels for {clients} clients"
            )

        now = np.zeros(clients, dtype=np.float64)
        warming = np.ones(clients, dtype=bool)
        warmup_seen = np.zeros(clients, dtype=np.int64)
        extra_left = np.full(clients, int(extra_warmup), dtype=np.int64)

        count = np.zeros(clients, dtype=np.int64)
        mean = np.zeros(clients, dtype=np.float64)
        m2 = np.zeros(clients, dtype=np.float64)
        minimum = np.full(clients, np.inf, dtype=np.float64)
        maximum = np.full(clients, -np.inf, dtype=np.float64)
        hits_measured = np.zeros(clients, dtype=np.int64)
        misses_measured = np.zeros(clients, dtype=np.int64)
        per_disk = np.zeros((self.num_disks, clients), dtype=np.int64)
        total_hits = 0
        total_misses = 0
        samples: Optional[List[float]] = (
            [] if collect_responses and clients == 1 else None
        )

        value = np.zeros(clients, dtype=np.float64)
        physical_step = np.zeros(clients, dtype=np.int64)
        disk_step = np.zeros(clients, dtype=np.int64)

        # Single-frequency tuner state (C-row programs only): every
        # client starts tuned to channel 0, exactly like the scalar
        # tuner loop.
        channel_of = self.channel_of
        tuned = channel_of is not None
        if tuned:
            current = np.zeros(clients, dtype=np.int64)
            retunes_measured = np.zeros(clients, dtype=np.int64)
            retune_step = np.zeros(clients, dtype=bool)
            retune_from = np.zeros(clients, dtype=np.int64)
            per_channel_misses = np.zeros(self.num_channels, dtype=np.int64)
            total_retunes = 0
            retune_cost = self.retune_cost

        for step in range(steps):
            page = pages[step]
            now += think

            # Warm-up bookkeeping, exactly the scalar traced loop's
            # order: resolved per client *before* the lookup, against
            # the cache state left by the previous request.
            if warming.any():
                if warmup_requests is not None:
                    np.logical_and(
                        warming, warmup_seen < warmup_requests, out=warming
                    )
                else:
                    ready = warming & policy.is_full()
                    if ready.any():
                        graceful = ready & (extra_left > 0)
                        extra_left[graceful] -= 1
                        warming[ready & ~graceful] = False
            measuring = ~warming
            warmup_seen[warming] += 1

            request_time = now.copy() if emit else None

            hit = policy.lookup(page, now)
            miss = ~hit
            total_hits += int(hit.sum())
            victims = None
            value[:] = 0.0
            rows = np.nonzero(miss)[0]
            if tuned:
                retune_step[:] = False
            if len(rows):
                total_misses += len(rows)
                physical = self._physical_of(rows, page[rows])
                if tuned:
                    # The vectorized tuner: a miss whose page lives on
                    # another channel switches first, so the earliest
                    # usable completion moves from ``now`` to ``now +
                    # retune_cost`` — the scalar loop's arithmetic,
                    # element for element (the wait below still counts
                    # from the request instant).
                    target = channel_of[physical]
                    switch = target != current[rows]
                    retune_step[rows] = switch
                    retune_from[rows] = current[rows]
                    listen = now[rows] + retune_cost * switch
                    total_retunes += int(switch.sum())
                    per_channel_misses += np.bincount(
                        target, minlength=self.num_channels
                    )
                    current[rows] = target
                    arrivals = schedule.next_arrival_batch(physical, listen)
                else:
                    arrivals = schedule.next_arrival_batch(
                        physical, now[rows]
                    )
                value[rows] = arrivals - now[rows]
                now[rows] = arrivals
                victims = policy.admit(page, now, miss)
                physical_step[rows] = physical
                disk_step[rows] = self.disk_of[physical]

            measured = np.nonzero(measuring)[0]
            if len(measured):
                sample = value[measured]
                count[measured] += 1
                delta = sample - mean[measured]
                mean[measured] += delta / count[measured]
                m2[measured] += delta * (sample - mean[measured])
                minimum[measured] = np.minimum(minimum[measured], sample)
                maximum[measured] = np.maximum(maximum[measured], sample)
                measured_hit = hit[measured]
                hits_measured[measured] += measured_hit
                misses_measured[measured] += ~measured_hit
                measured_miss = measured[~measured_hit]
                if len(measured_miss):
                    np.add.at(
                        per_disk, (disk_step[measured_miss], measured_miss), 1
                    )
                if tuned:
                    retunes_measured[measured] += retune_step[measured]
                if samples is not None and measuring[0]:
                    samples.append(float(value[0]))

            if emit:
                self._emit_step(
                    tracer, client_labels, request_time, page, hit,
                    measuring, physical_step, now, value, victims,
                    retune_step=retune_step if tuned else None,
                    retune_from=retune_from if tuned else None,
                    retune_to=current if tuned else None,
                )

        if profile is not None and profile.enabled:
            profile.count("engine.batch.loop_iterations", steps * clients)
            profile.count("engine.batch.clients", clients)
            profile.count("engine.batch.hits", total_hits)
            profile.count("engine.batch.misses", total_misses)
            if tuned:
                profile.count("engine.batch.retunes", total_retunes)
                for channel in range(self.num_channels):
                    profile.count(
                        f"engine.batch.channel.{channel}.misses",
                        int(per_channel_misses[channel]),
                    )

        return BatchOutcome(
            count=count,
            mean=mean,
            m2=m2,
            minimum=minimum,
            maximum=maximum,
            hits=hits_measured,
            misses=misses_measured,
            per_disk_misses=per_disk,
            warmup_seen=warmup_seen,
            final_time=now,
            samples=samples,
            retunes=retunes_measured if tuned else None,
        )

    def _emit_step(
        self, tracer, labels, request_time, page, hit, measuring,
        physical_step, now, value, victims, *,
        retune_step=None, retune_from=None, retune_to=None,
    ) -> None:
        """Emit one step's records, per client, in the scalar order.

        For a single unlabelled client the sequence is byte-identical to
        the fast engine's traced run (``client.*`` records) wrapped in a
        :class:`~repro.cache.base.TracedCache` (``cache.*`` records) —
        including the ``client.retune`` record a multi-channel miss
        slips between its miss and wait.  Labelled runs add a
        ``client`` field to every record.
        """
        for client in range(len(page)):
            extra = {} if labels is None else {"client": labels[client]}
            page_id = int(page[client])
            requested = float(request_time[client])
            tracer.emit(
                "client.request", requested, page=page_id,
                phase="measured" if measuring[client] else "warmup",
                **extra,
            )
            tracer.emit(
                "cache.lookup", requested, page=page_id,
                hit=bool(hit[client]), **extra,
            )
            if hit[client]:
                tracer.emit("client.hit", requested, page=page_id, **extra)
                continue
            physical = int(physical_step[client])
            arrival = float(now[client])
            tracer.emit(
                "client.miss", requested, page=page_id, physical=physical,
                **extra,
            )
            if retune_step is not None and retune_step[client]:
                tracer.emit(
                    "client.retune", requested, page=page_id,
                    physical=physical,
                    from_channel=int(retune_from[client]),
                    to_channel=int(retune_to[client]),
                    **extra,
                )
            tracer.emit(
                "client.wait", arrival, page=page_id, physical=physical,
                wait=float(value[client]), **extra,
            )
            victim = int(victims[client])
            tracer.emit(
                "cache.admit", arrival, page=page_id,
                victim=None if victim == FREE else victim, **extra,
            )
            if victim != FREE and victim != page_id:
                tracer.emit(
                    "cache.evict", arrival, page=victim, admitted=page_id,
                    **extra,
                )


def build_columnar_engine(
    config,
    schedule: BroadcastSchedule,
    layout: DiskLayout,
    physical: np.ndarray,
    num_clients: int,
) -> Optional[ColumnarEngine]:
    """Assemble a columnar engine for ``num_clients`` copies of ``config``.

    ``physical`` is the logical→physical page matrix — one shared row
    for noise-free groups, one row per client otherwise.  Returns
    ``None`` when ``config.policy`` has no columnar formulation.  A
    multi-channel :class:`~repro.core.schedule.BroadcastProgram`
    (detected by its ``channel_array`` surface) arms the vectorized
    single-frequency tuner: per-client tuned-channel state, retune-cost
    arithmetic, and retune counters, byte-identical per client to the
    fast engine's ``_run_trace_multichannel``.
    """
    name = batchable_policy_name(config.policy)
    if name is None:
        return None
    physical = np.asarray(physical, dtype=np.int64)
    access_range = config.access_range
    frequency_physical = frequency_array(schedule)
    disk_of = disk_index_array(layout)
    logical = physical[:, :access_range]
    oracles = BatchedOracles(
        probability=config.build_distribution().probabilities(),
        frequency=frequency_physical[logical],
        disk=disk_of[logical],
        num_disks=layout.num_disks,
        lix_alpha=config.lix_alpha,
    )
    policy = make_batched_policy(
        name, num_clients, config.cache_size, oracles
    )
    if policy is None:
        return None
    channel_of = None
    num_channels = 1
    if hasattr(schedule, "channel_array") and schedule.num_channels > 1:
        channel_of = schedule.channel_array()
        num_channels = schedule.num_channels
    return ColumnarEngine(
        schedule=schedule,
        policy=policy,
        physical=physical,
        disk_of=disk_of,
        num_disks=layout.num_disks,
        think_time=config.think_time,
        channel_of=channel_of,
        num_channels=num_channels,
        retune_cost=float(getattr(config, "retune_cost", 1.0)),
    )
