"""The columnar batch-fleet engine: N clients stepped in lockstep.

One engine instance holds columnar NumPy state for a whole fleet of
clients sharing a single :class:`~repro.core.schedule.BroadcastSchedule`
— per-client clocks, cache contents, evict scores, and statistics as
``(N,)``/``(N, C)`` arrays — and advances every client per request step
with array operations instead of running N Python event loops.

Three layers:

* :mod:`repro.batch.rng` — the array-RNG gateway: per-client and
  per-group :class:`numpy.random.Generator` columns seeded through
  :func:`~repro.exec.plan.derive_seed`, entropy-compatible with
  :class:`~repro.sim.rng.RandomStreams`.
* :mod:`repro.batch.engine` — the general columnar engine.  For a
  single client it is *byte-identical* to the ``fast`` engine (same
  Welford fold, same closed-form clock arithmetic, same trace records);
  registered as the ``batch`` plan engine so ``--engine batch`` works
  from every CLI.
* :mod:`repro.batch.fleet` — :func:`~repro.batch.fleet.run_fleet`:
  expands homogeneous population segments directly into batch groups
  (heterogeneous or unbatchable segments fall back per-client) and,
  for cache-less fixed-gap configurations, collapses the whole group
  into a phase-table kernel (see ``docs/PERFORMANCE.md``).
"""

from repro.batch.fleet import run_fleet

__all__ = ["run_fleet"]
