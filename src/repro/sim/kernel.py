"""Event heap and virtual clock for the simulation kernel.

The kernel follows the classic event-list design: a binary heap of
``(time, priority, sequence, event)`` entries, popped in order, with each
popped event running its callbacks.  Processes (see
:mod:`repro.sim.process`) are implemented *on top of* events: a process is
just a callback chain that resumes a generator.

The paper measured everything in *broadcast units*; the kernel itself is
unit-agnostic and simply advances a floating-point clock.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Iterable, Optional

from repro.errors import SimulationError

#: Default priority for scheduled events.  Lower values fire first among
#: events scheduled at the same instant.
NORMAL_PRIORITY = 1

#: Priority used for urgent bookkeeping (e.g. interrupts) that must run
#: before ordinary events at the same timestamp.
URGENT_PRIORITY = 0


class Event:
    """A one-shot occurrence that callbacks (and processes) can wait on.

    An event starts *pending*, becomes *triggered* when :meth:`succeed` or
    :meth:`fail` is called (or when the simulator schedules it), and is
    *processed* once the simulator has run its callbacks.  Triggering an
    event twice is an error — the paper's client loop relies on each page
    arrival being a distinct occurrence.
    """

    __slots__ = (
        "sim",
        "callbacks",
        "_value",
        "_ok",
        "_triggered",
        "_processed",
        "_failure_consumed",
    )

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._processed = False
        # True once a waiter has taken responsibility for a failure value
        # (processes re-raise it inside the waiting generator).  Failed
        # events nobody consumes are dropped silently by step(); callers
        # that must observe failures use run_until_event().
        self._failure_consumed = True

    # -- state inspection ------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value and is queued to fire."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded, False if it failed."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's payload (or exception, for failed events)."""
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event successfully with ``value`` after ``delay``."""
        if self._triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._triggered = True
        self._value = value
        self._ok = True
        self.sim._enqueue(self, delay, NORMAL_PRIORITY)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event as failed; waiters will see ``exception``."""
        if self._triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._value = exception
        self._ok = False
        self.sim._enqueue(self, delay, NORMAL_PRIORITY)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event fires.

        If the event has already been processed the callback runs
        immediately; this keeps "wait on a past event" semantics simple
        for processes that race with broadcasts.
        """
        if self.callbacks is None:
            callback(self)
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "processed" if self._processed
            else "triggered" if self._triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires automatically ``delay`` units in the future."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        self._triggered = True
        self._value = value
        sim._enqueue(self, delay, NORMAL_PRIORITY)


class Simulator:
    """The virtual clock and event queue.

    Typical use::

        sim = Simulator()
        sim.process(my_generator_function(sim))
        sim.run(until=100_000)

    The clock only advances when :meth:`run` or :meth:`step` pops events,
    so a simulation with no pending events is finished.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._heap: list[tuple[float, int, int, Event]] = []
        self._counter = itertools.count()
        #: Total number of events processed; useful for progress reporting.
        self.events_processed = 0
        #: High-water mark of the pending-event heap, for profiling.
        self.heap_peak = 0
        #: Optional :class:`repro.obs.trace.Tracer`.  When attached and
        #: enabled, :meth:`step` emits one ``sim.event`` record per
        #: dispatched event; ``None`` (the default) costs one branch.
        self.trace = None

    # -- clock -----------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    # -- event construction ----------------------------------------------
    def event(self) -> Event:
        """Create a fresh pending :class:`Event` bound to this simulator."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` units from now."""
        return Timeout(self, delay, value)

    def process(self, generator) -> "Process":
        """Start a generator as a concurrently-running process."""
        from repro.sim.process import Process

        return Process(self, generator)

    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
    ) -> Event:
        """Run ``callback()`` at ``now + delay``; returns the firing event."""
        event = Event(self)
        event.add_callback(lambda _ev: callback())
        event.succeed(delay=delay)
        return event

    # -- internals ---------------------------------------------------------
    def _enqueue(self, event: Event, delay: float, priority: int) -> None:
        if delay < 0:
            raise SimulationError(
                f"cannot schedule an event {abs(delay)} units in the past"
            )
        heapq.heappush(
            self._heap, (self._now + delay, priority, next(self._counter), event)
        )
        if len(self._heap) > self.heap_peak:
            self.heap_peak = len(self._heap)

    def _enqueue_urgent(self, event: Event) -> None:
        """Queue an already-triggered event to fire now, before peers."""
        heapq.heappush(self._heap, (self._now, URGENT_PRIORITY, next(self._counter), event))
        if len(self._heap) > self.heap_peak:
            self.heap_peak = len(self._heap)

    # -- execution ---------------------------------------------------------
    def peek(self) -> float:
        """Time of the next event, or ``float('inf')`` if none pending."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event (advancing the clock to it)."""
        if not self._heap:
            raise SimulationError("step() called on an empty event queue")
        when, priority, seq, event = heapq.heappop(self._heap)
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        event._processed = True
        self.events_processed += 1
        trace = self.trace
        if trace is not None and trace.enabled:
            trace.emit("sim.event", when, seq=seq, priority=priority)
        for callback in callbacks or ():
            callback(event)
        if not event._ok and not getattr(event, "_failure_consumed", True):
            # A failed event nobody waited on: surface the error rather
            # than losing it silently.
            raise event._value

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> float:
        """Run until the queue drains, ``until`` is reached, or the event cap.

        Returns the simulation time when execution stopped.  ``until`` is
        inclusive in the sense that events scheduled exactly at ``until``
        do fire.
        """
        remaining = max_events
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                self._now = until
                break
            if remaining is not None:
                if remaining == 0:
                    break
                remaining -= 1
            self.step()
        else:
            if until is not None and until > self._now:
                self._now = until
        return self._now

    def run_until_event(self, event: Event, limit: Optional[float] = None) -> Any:
        """Run until ``event`` has been processed; return its value.

        Raises :class:`SimulationError` if the queue drains or ``limit``
        passes without the event firing (a deadlock in the modelled
        system, e.g. waiting for a page that is never broadcast).
        """
        while not event.processed:
            if not self._heap:
                raise SimulationError(
                    "event queue drained before the awaited event fired"
                )
            if limit is not None and self._heap[0][0] > limit:
                raise SimulationError(
                    f"awaited event did not fire before t={limit}"
                )
            self.step()
        if not event.ok:
            raise event.value
        return event.value

    def drain(self) -> None:
        """Discard all pending events (used when tearing down a scenario)."""
        self._heap.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator t={self._now:.3f} pending={len(self._heap)}>"


def all_processed(events: Iterable[Event]) -> bool:
    """True if every event in ``events`` has been processed."""
    return all(event.processed for event in events)
