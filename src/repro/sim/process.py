"""Generator-coroutine processes for the simulation kernel.

A process wraps a generator that ``yield``\\ s :class:`~repro.sim.kernel.Event`
objects.  Each yield suspends the process until the event fires; the event's
value is sent back into the generator.  This mirrors the process-oriented
style of CSIM (and of SimPy), which the paper's simulator was written in.

Processes are themselves events: they trigger when the generator returns,
with the generator's return value as the payload, so one process can wait
for another simply by yielding it.
"""

from __future__ import annotations

from typing import Any, Generator, Iterable

from repro.errors import SimulationError
from repro.sim.kernel import Event, Simulator


class Interrupt(Exception):
    """Thrown inside a process when another process interrupts it.

    The ``cause`` attribute carries whatever object the interrupter
    supplied (e.g. "cache invalidated").
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Process(Event):
    """A running generator, resumed each time its awaited event fires."""

    __slots__ = ("_generator", "_waiting_on", "name")

    def __init__(self, sim: Simulator, generator: Generator, name: str = ""):
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"Process requires a generator, got {type(generator).__name__}"
            )
        super().__init__(sim)
        self._generator = generator
        self._waiting_on: Event | None = None
        self.name = name or getattr(generator, "__name__", "process")
        # Bootstrap: resume the generator for the first time "immediately".
        bootstrap = Event(sim)
        bootstrap.add_callback(self._resume)
        bootstrap.succeed()

    # -- state -------------------------------------------------------------
    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self.triggered

    # -- control -----------------------------------------------------------
    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The event the process was waiting on is abandoned (its callback is
        disarmed); the process decides in its ``except Interrupt`` handler
        how to continue.
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        target = self._waiting_on
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._waiting_on = None
        wakeup = Event(self.sim)
        wakeup._value = Interrupt(cause)
        wakeup._ok = False
        wakeup._triggered = True
        wakeup._failure_consumed = True
        wakeup.add_callback(self._resume)
        self.sim._enqueue_urgent(wakeup)

    # -- engine ------------------------------------------------------------
    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        try:
            if event.ok:
                target = self._generator.send(event.value)
            else:
                event._failure_consumed = True
                target = self._generator.throw(event.value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt as interrupt:
            # Process chose not to handle its interrupt: treat as failure.
            self.fail(interrupt)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; "
                "processes must yield Event instances"
            )
        if target.sim is not self.sim:
            raise SimulationError(
                f"process {self.name!r} yielded an event from another simulator"
            )
        self._waiting_on = target
        target.add_callback(self._resume)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.is_alive else "finished"
        return f"<Process {self.name!r} {state}>"


class AnyOf(Event):
    """Fires when the first of several events fires.

    The value is a dict mapping each already-fired event to its value, so
    a client can distinguish "page arrived" from "timeout elapsed".
    """

    __slots__ = ("_events",)

    def __init__(self, sim: Simulator, events: Iterable[Event]):
        super().__init__(sim)
        self._events = list(events)
        if not self._events:
            self.succeed({})
            return
        for event in self._events:
            event.add_callback(self._on_child)

    def _on_child(self, child: Event) -> None:
        if self.triggered:
            return
        if not child.ok:
            child._failure_consumed = True
            self.fail(child.value)
            return
        self.succeed({ev: ev.value for ev in self._events if ev.processed})


class AllOf(Event):
    """Fires when every one of several events has fired.

    The value is a dict mapping each event to its value.
    """

    __slots__ = ("_events", "_remaining")

    def __init__(self, sim: Simulator, events: Iterable[Event]):
        super().__init__(sim)
        self._events = list(events)
        self._remaining = len(self._events)
        if self._remaining == 0:
            self.succeed({})
            return
        for event in self._events:
            event.add_callback(self._on_child)

    def _on_child(self, child: Event) -> None:
        if self.triggered:
            return
        if not child.ok:
            child._failure_consumed = True
            self.fail(child.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed({ev: ev.value for ev in self._events})
