"""Online statistics used by the experiment harness.

The paper reports steady-state client response time: measurement begins
only after the cache is full, then runs for 15,000+ requests.  The
accumulators here support that protocol directly:

* :class:`RunningStats` — Welford's online mean/variance (numerically
  stable over hundreds of thousands of samples).
* :class:`WindowedSeries` — retains a bounded tail of raw samples for
  convergence checks and percentile reporting.
* :class:`Histogram` — fixed-width bins for response-time distributions.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Iterable, List, Optional, Tuple


class RunningStats:
    """Welford online accumulator for mean, variance, min and max."""

    __slots__ = ("count", "_mean", "_m2", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        """Fold one sample into the accumulator."""
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def extend(self, values: Iterable[float]) -> None:
        """Fold many samples into the accumulator."""
        for value in values:
            self.add(value)

    @property
    def mean(self) -> float:
        """Sample mean (0.0 if empty, matching 'no delay observed')."""
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Unbiased sample variance."""
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def stddev(self) -> float:
        """Unbiased sample standard deviation."""
        return math.sqrt(self.variance)

    @property
    def stderr(self) -> float:
        """Standard error of the mean."""
        return self.stddev / math.sqrt(self.count) if self.count else 0.0

    def merge(self, other: "RunningStats") -> "RunningStats":
        """Combine two accumulators (parallel Welford merge)."""
        merged = RunningStats()
        n = self.count + other.count
        if n == 0:
            return merged
        delta = other._mean - self._mean
        merged.count = n
        merged._mean = self._mean + delta * other.count / n
        merged._m2 = (
            self._m2 + other._m2 + delta * delta * self.count * other.count / n
        )
        merged.minimum = min(self.minimum, other.minimum)
        merged.maximum = max(self.maximum, other.maximum)
        return merged

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RunningStats n={self.count} mean={self.mean:.3f}>"


class WindowedSeries:
    """Keeps overall stats plus the most recent ``window`` raw samples.

    The retained tail supports the convergence heuristic used by the
    runner: the run is declared steady when the means of the first and
    second halves of the window agree within a tolerance.
    """

    def __init__(self, window: int = 4096):
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        self.window = window
        self.stats = RunningStats()
        self._tail: Deque[float] = deque(maxlen=window)

    def add(self, value: float) -> None:
        """Record one sample."""
        self.stats.add(value)
        self._tail.append(value)

    @property
    def tail(self) -> List[float]:
        """A copy of the retained recent samples."""
        return list(self._tail)

    def tail_percentile(self, fraction: float) -> float:
        """Percentile (0..1) over the retained tail."""
        if not self._tail:
            raise ValueError("no samples recorded")
        ordered = sorted(self._tail)
        index = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
        return ordered[index]

    def is_converged(self, rtol: float = 0.02) -> bool:
        """True when the two halves of the full window agree within ``rtol``."""
        if len(self._tail) < self.window:
            return False
        half = self.window // 2
        samples = list(self._tail)
        first = sum(samples[:half]) / half
        second = sum(samples[half:]) / (len(samples) - half)
        scale = max(abs(first), abs(second), 1e-12)
        return abs(first - second) / scale <= rtol


class TimeWeightedStat:
    """Time-weighted average of a piecewise-constant signal.

    The classic CSIM "table statistic": record the signal's value at
    each change instant; the mean weights each value by how long it
    held.  Used for queue lengths and resource utilisation.
    """

    __slots__ = ("_last_time", "_last_value", "_weighted_sum", "_elapsed",
                 "maximum")

    def __init__(self, start_time: float = 0.0, initial_value: float = 0.0):
        self._last_time = start_time
        self._last_value = initial_value
        self._weighted_sum = 0.0
        self._elapsed = 0.0
        self.maximum = initial_value

    def record(self, time: float, value: float) -> None:
        """The signal changed to ``value`` at ``time``."""
        if time < self._last_time:
            raise ValueError(
                f"time went backwards: {time} < {self._last_time}"
            )
        span = time - self._last_time
        self._weighted_sum += self._last_value * span
        self._elapsed += span
        self._last_time = time
        self._last_value = value
        if value > self.maximum:
            self.maximum = value

    def mean(self, now: Optional[float] = None) -> float:
        """Time-weighted mean up to ``now`` (default: last change)."""
        weighted = self._weighted_sum
        elapsed = self._elapsed
        if now is not None:
            if now < self._last_time:
                raise ValueError(
                    f"now={now} precedes the last change at {self._last_time}"
                )
            span = now - self._last_time
            weighted += self._last_value * span
            elapsed += span
        return weighted / elapsed if elapsed > 0 else self._last_value

    @property
    def current(self) -> float:
        """The signal's present value."""
        return self._last_value

    @property
    def last_time(self) -> float:
        """Instant of the most recent change (or the start time)."""
        return self._last_time


class Histogram:
    """Fixed-width histogram over ``[low, high)`` with overflow bins."""

    def __init__(self, low: float, high: float, bins: int):
        if bins < 1:
            raise ValueError(f"bins must be >= 1, got {bins}")
        if not high > low:
            raise ValueError(f"need high > low, got [{low}, {high})")
        self.low = low
        self.high = high
        self.bins = bins
        self._width = (high - low) / bins
        self.counts = [0] * bins
        self.underflow = 0
        self.overflow = 0

    def add(self, value: float) -> None:
        """Record one sample in its bin."""
        if value < self.low:
            self.underflow += 1
        elif value >= self.high:
            self.overflow += 1
        else:
            # A value infinitesimally below ``high`` can round up to
            # index == bins when (high - low) / bins is not exact in
            # binary; clamp to the last in-range bin.
            index = int((value - self.low) / self._width)
            if index >= self.bins:
                index = self.bins - 1
            self.counts[index] += 1

    @property
    def total(self) -> int:
        """Total samples recorded, including over/underflow."""
        return sum(self.counts) + self.underflow + self.overflow

    def edges(self) -> List[Tuple[float, float]]:
        """The ``[lo, hi)`` boundaries of each bin."""
        return [
            (self.low + i * self._width, self.low + (i + 1) * self._width)
            for i in range(self.bins)
        ]

    def nonempty(self) -> List[Tuple[float, float, int]]:
        """``(lo, hi, count)`` for every bin holding at least one sample."""
        return [
            (lo, hi, count)
            for (lo, hi), count in zip(self.edges(), self.counts)
            if count
        ]
