"""Contention primitives: :class:`Resource` and :class:`Store`.

The core broadcast-disk experiments need no contention — the broadcast
channel is shared without interference, which is the whole point of the
architecture.  These primitives exist for the *extensions*: the
multi-client scenario uses a :class:`Store` as the per-client mailbox of
broadcast arrivals, and upstream-link experiments (paper §6 future work)
can model a low-bandwidth back channel as a :class:`Resource`.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque

from repro.errors import SimulationError
from repro.sim.kernel import Event, Simulator


class Resource:
    """A counted resource with FIFO queueing.

    ``request()`` returns an event that fires when a unit is granted;
    ``release()`` hands the unit back.  Usage::

        grant = resource.request()
        yield grant
        ...  # critical section
        resource.release()
    """

    def __init__(self, sim: Simulator, capacity: int = 1):
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        """Number of units currently granted."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of pending requests."""
        return len(self._waiters)

    def request(self) -> Event:
        """Ask for one unit; the returned event fires when granted."""
        event = self.sim.event()
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed(self)
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Return one unit, waking the oldest waiter if any."""
        if self._in_use == 0:
            raise SimulationError("release() without a matching request()")
        if self._waiters:
            waiter = self._waiters.popleft()
            waiter.succeed(self)
        else:
            self._in_use -= 1

    def cancel(self, request_event: Event) -> bool:
        """Withdraw a pending request before it is granted.

        Returns True if the request was still queued (and is now gone);
        False if it had already been granted — the caller then still
        owns a unit and must ``release()`` it.
        """
        try:
            self._waiters.remove(request_event)
            return True
        except ValueError:
            return False


class Store:
    """An unbounded FIFO buffer of items with blocking ``get``.

    ``put(item)`` never blocks (the broadcast channel never waits for
    clients); ``get()`` returns an event that fires with the next item.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit ``item``, waking the oldest blocked getter if any."""
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Event that fires with the next available item."""
        event = self.sim.event()
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event
