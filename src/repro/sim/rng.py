"""Named, seeded random streams.

The paper's results are steady-state averages over stochastic workloads;
reproducing them credibly requires that every source of randomness be both
seeded and *independent* of the others, so that, say, adding noise swaps to
the mapping does not perturb the sequence of client requests.

:class:`RandomStreams` derives one :class:`numpy.random.Generator` per
logical purpose ("requests", "noise", "think", ...) from a single root
seed using ``SeedSequence.spawn``-style child seeding keyed by the stream
name.  Asking for the same name twice returns the same generator object.
"""

from __future__ import annotations

from typing import Dict

import numpy as np


class RandomStreams:
    """A family of independent, reproducible random generators."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._root = np.random.SeedSequence(self.seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it deterministically.

        The generator is keyed by hashing the stream name into the seed
        material, so the set of *other* streams requested never affects
        the values a given stream produces.
        """
        generator = self._streams.get(name)
        if generator is None:
            # Stable, platform-independent digest of the name.
            digest = np.frombuffer(name.encode("utf-8"), dtype=np.uint8)
            entropy = (self.seed, int(digest.sum()), *digest.tolist())
            generator = np.random.Generator(
                np.random.PCG64(np.random.SeedSequence(entropy))
            )
            self._streams[name] = generator
        return generator

    def __getitem__(self, name: str) -> np.random.Generator:
        return self.stream(name)

    def fork(self, offset: int) -> "RandomStreams":
        """A fresh family with a related but distinct root seed.

        Used to give replicated experiment runs (e.g. different simulated
        clients) independent randomness while keeping a single master seed.
        """
        return RandomStreams(self.seed * 1_000_003 + offset)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RandomStreams seed={self.seed} streams={sorted(self._streams)}>"
