"""Process-oriented discrete-event simulation kernel.

This subpackage is the reproduction's substitute for CSIM [Schw86], the
commercial C-based simulation library the paper used.  It provides:

* :class:`~repro.sim.kernel.Simulator` — the virtual clock and event heap.
* :class:`~repro.sim.kernel.Event` / :class:`~repro.sim.kernel.Timeout` —
  one-shot occurrences that processes can wait on.
* :class:`~repro.sim.process.Process` — generator-coroutine processes
  (``yield`` an event to suspend until it fires), with interrupt support.
* :class:`~repro.sim.resources.Resource` and
  :class:`~repro.sim.resources.Store` — contention primitives used by the
  multi-client extension.
* :mod:`~repro.sim.rng` — named, seeded random streams so every experiment
  is reproducible bit-for-bit.
* :mod:`~repro.sim.stats` — online statistics accumulators with warm-up
  trimming, used to implement the paper's steady-state measurement rule.

Time is dimensionless; the broadcast-disk layers interpret one unit as one
*broadcast unit* (the time to broadcast a single page), exactly as the
paper's simulator does.
"""

from repro.sim.kernel import Event, Simulator, Timeout
from repro.sim.process import AllOf, AnyOf, Interrupt, Process
from repro.sim.resources import Resource, Store
from repro.sim.rng import RandomStreams
from repro.sim.stats import Histogram, RunningStats, TimeWeightedStat, WindowedSeries

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Histogram",
    "Interrupt",
    "Process",
    "RandomStreams",
    "Resource",
    "RunningStats",
    "Simulator",
    "Store",
    "Timeout",
    "WindowedSeries",
]
