"""The paper's primary contribution: broadcast-disk program construction.

Layout of this subpackage:

* :mod:`~repro.core.disks` — :class:`DiskLayout`: how the database pages
  are partitioned onto "disks" and the Δ-rule relating disk speeds (§4.2).
* :mod:`~repro.core.chunks` — the LCM chunking arithmetic of §2.2 step 4.
* :mod:`~repro.core.schedule` — :class:`BroadcastSchedule`: the periodic
  slot sequence with per-page occurrence/frequency/next-arrival queries.
* :mod:`~repro.core.programs` — :class:`ProgramSpec`, the declarative
  builder for the §2.2 multidisk algorithm plus the flat,
  clustered-skewed, and random comparison programs of Figure 2.
* :mod:`~repro.core.channels` — multi-channel programs: partitioning the
  pages across C parallel channels (greedy bandwidth split plus
  conflict-aware refinement) into a :class:`BroadcastProgram` grid.
* :mod:`~repro.core.analysis` — closed-form expected-delay analysis
  (Table 1, the Bus Stop Paradox, bandwidth bounds).
* :mod:`~repro.core.optimizer` — broadcast shaping: search for the disk
  partitioning and Δ minimising analytic expected delay (the open
  optimisation problem the paper defers to future work).
"""

from repro.core.analysis import (
    bus_stop_penalty,
    expected_delay,
    flat_expected_delay,
    multidisk_expected_delay,
    per_page_expected_delay,
    sqrt_rule_lower_bound,
    sqrt_rule_shares,
)
from repro.core.channels import (
    ChannelAssignment,
    assign_channels,
    build_program,
    channel_schedule,
)
from repro.core.chunks import ChunkPlan, lcm_many
from repro.core.disks import DiskLayout
from repro.core.programs import (
    EMPTY_SLOT,
    ProgramSpec,
    paper_example_programs,
)
from repro.core.schedule import BroadcastProgram, BroadcastSchedule
from repro.core.validate import ValidationReport, validate_program

__all__ = [
    "BroadcastProgram",
    "BroadcastSchedule",
    "ChannelAssignment",
    "ChunkPlan",
    "DiskLayout",
    "EMPTY_SLOT",
    "ProgramSpec",
    "assign_channels",
    "build_program",
    "bus_stop_penalty",
    "channel_schedule",
    "expected_delay",
    "flat_expected_delay",
    "lcm_many",
    "multidisk_expected_delay",
    "paper_example_programs",
    "per_page_expected_delay",
    "sqrt_rule_lower_bound",
    "sqrt_rule_shares",
    "ValidationReport",
    "validate_program",
]
