"""Validation of broadcast programs against the §2.1 desiderata.

The paper argues a broadcast program should have three features:

1. "The inter-arrival times of subsequent copies of a data item should
   be fixed" — no Bus Stop Paradox penalty;
2. "There should be a well defined unit of broadcast after which the
   broadcast repeats" — periodicity (structural for our schedules, but
   the *effective* period may be shorter than the stored one if the slot
   sequence repeats internally);
3. "Subject to the above two constraints, as much of the available
   broadcast bandwidth should be used as possible" — minimal padding.

:func:`validate_program` checks all three and quantifies violations, so
hand-built or third-party schedules can be audited before use.  The CLI
(``python -m repro inspect``) prints the report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.schedule import BroadcastSchedule


@dataclass
class ValidationReport:
    """Outcome of auditing one broadcast program."""

    period: int
    effective_period: int
    num_pages: int
    utilisation: float
    #: Pages whose inter-arrival gaps vary, with their bus-stop penalty
    #: (extra expected delay over the fixed-gap floor, in slots).
    variable_gap_pages: Dict[int, float] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    @property
    def has_fixed_interarrivals(self) -> bool:
        """Desideratum 1: every page's gaps are equal."""
        return not self.variable_gap_pages

    @property
    def is_tight(self) -> bool:
        """Desideratum 2 (effective): no internal repetition wastes period."""
        return self.effective_period == self.period

    @property
    def total_bus_stop_penalty(self) -> float:
        """Sum of per-page penalties (unweighted)."""
        return sum(self.variable_gap_pages.values())

    def summary(self) -> str:
        """A short human-readable audit."""
        lines = [
            f"period {self.period}"
            + (
                ""
                if self.is_tight
                else f" (effective {self.effective_period}: the cycle repeats)"
            ),
            f"pages {self.num_pages}, bandwidth utilisation "
            f"{self.utilisation:.2%}",
        ]
        if self.has_fixed_interarrivals:
            lines.append("fixed inter-arrival times: yes (no bus-stop penalty)")
        else:
            worst = max(
                self.variable_gap_pages, key=self.variable_gap_pages.get
            )
            lines.append(
                f"fixed inter-arrival times: NO — "
                f"{len(self.variable_gap_pages)} page(s) with variable "
                f"gaps, worst page {worst} "
                f"(+{self.variable_gap_pages[worst]:.2f} slots expected delay)"
            )
        lines.extend(self.notes)
        return "\n".join(lines)


def _effective_period(slots) -> int:
    """Smallest divisor-length prefix whose repetition yields the cycle."""
    length = len(slots)
    for candidate in range(1, length + 1):
        if length % candidate:
            continue
        if all(
            slots[position] == slots[position % candidate]
            for position in range(length)
        ):
            return candidate
    return length


def validate_program(schedule: BroadcastSchedule) -> ValidationReport:
    """Audit ``schedule`` against the §2.1 desiderata."""
    from repro.core.analysis import bus_stop_penalty

    variable: Dict[int, float] = {}
    for page in schedule.pages:
        if not schedule.has_fixed_interarrival(page):
            variable[page] = bus_stop_penalty(schedule, page)

    report = ValidationReport(
        period=schedule.period,
        effective_period=_effective_period(schedule.slots),
        num_pages=schedule.num_pages,
        utilisation=1.0 - schedule.empty_slots / schedule.period,
        variable_gap_pages=variable,
    )
    if report.utilisation < 0.95:
        report.notes.append(
            f"note: {schedule.empty_slots} padding slots "
            f"({1 - report.utilisation:.1%}) — consider adjusting relative "
            "frequencies (§2.2)"
        )
    return report
