"""Periodic broadcast schedules and their timing queries.

A :class:`BroadcastSchedule` is an immutable periodic sequence of slots,
each carrying a physical page id (or :data:`~repro.core.chunks.EMPTY_SLOT`
for padding).  Slot ``s`` of cycle ``k`` occupies real time
``[k*period + s, k*period + s + 1)`` in broadcast units, and its page is
usable by a client at the *completion* instant ``k*period + s + 1``.

The class pre-computes each page's occurrence list so the two timing
queries the simulators need are cheap:

* :meth:`next_arrival` — the first completion of a page after a given
  time.  Because the program is periodic, the wait is a pure function
  of the *slot offset* the request lands in, so the query is table
  driven instead of searched: pages with a fixed inter-arrival gap
  (every page of a §2.2 multidisk program — the property the paper
  proves in §2.1) answer with O(1) modular arithmetic from a cached
  ``(residue, gap)`` pair, and irregular pages answer from a
  lazily-built per-page **wait table** (``wait[slot % period]``, an
  int64 array) with one integer index.  Tables are built on a page's
  first query and accounted against a configurable memory budget;
  pages over budget fall back to :meth:`next_arrival_bisect`, the
  original O(log occurrences) bisection, which is also kept as the
  reference implementation for the property tests and the perf gate.
* :meth:`expected_delay` — the closed-form mean wait of a uniformly
  arriving request, ``sum(g^2) / (2 * period)`` over the inter-arrival
  gaps ``g`` (the Bus Stop Paradox in formula form: for fixed gaps this is
  ``period / (2 * count)``; variance in the gaps strictly increases it).

See ``docs/PERFORMANCE.md`` for the hot-path design and the budget knob.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.chunks import EMPTY_SLOT
from repro.errors import ScheduleError

#: Default per-schedule memory budget for wait tables, in bytes.  A
#: table costs ``8 * period`` bytes; at the paper's scale (periods in
#: the tens of thousands, ~hundreds of distinct pages actually
#: requested) the lazily-built tables stay in the tens of megabytes.
DEFAULT_WAIT_TABLE_BUDGET = 64 * 1024 * 1024


class BroadcastSchedule:
    """An immutable periodic broadcast program."""

    def __init__(
        self,
        slots: Sequence[int],
        label: str = "",
        *,
        wait_table_budget: int = DEFAULT_WAIT_TABLE_BUDGET,
    ):
        slots = [int(s) for s in slots]
        if not slots:
            raise ScheduleError("a broadcast schedule needs at least one slot")
        if any(s < 0 and s != EMPTY_SLOT for s in slots):
            raise ScheduleError("slots must hold page ids >= 0 or EMPTY_SLOT")
        if wait_table_budget < 0:
            raise ScheduleError(
                f"wait_table_budget must be >= 0 bytes, got {wait_table_budget}"
            )
        self._slots: Tuple[int, ...] = tuple(slots)
        self.label = label
        # Collect occurrence lists as plain python lists, then freeze
        # each page's list to an immutable sorted int64 array.
        collected: Dict[int, List[int]] = {}
        for index, page in enumerate(self._slots):
            if page != EMPTY_SLOT:
                collected.setdefault(page, []).append(index)
        if not collected:
            raise ScheduleError("schedule contains only empty slots")
        self._occurrences: Dict[int, np.ndarray] = {
            page: np.asarray(indices, dtype=np.int64)
            for page, indices in collected.items()
        }
        # Lazily-built timing structures (see docs/PERFORMANCE.md):
        # per-page (residue, gap) pairs for fixed-gap pages, per-page
        # wait tables under a byte budget for irregular ones, plus the
        # sorted index of non-empty slot offsets the channel scans with.
        self._wait_table_budget = int(wait_table_budget)
        self._wait_table_bytes = 0
        self._fixed_gaps: Dict[int, Optional[Tuple[int, int]]] = {}
        self._wait_tables: Dict[int, np.ndarray] = {}
        self._wait_tables_declined: Set[int] = set()
        self._nonempty_slots: Optional[np.ndarray] = None
        self._regular_timing: Optional[Tuple[np.ndarray, np.ndarray]] = None
        # Per-tier query counters for profiling; None (the default) means
        # disabled and costs next_arrival a single identity check.
        self._tier_queries: Optional[Dict[str, int]] = None

    # -- structure ---------------------------------------------------------
    @property
    def slots(self) -> Tuple[int, ...]:
        """The page id (or EMPTY_SLOT) broadcast in each slot of one period."""
        return self._slots

    @property
    def period(self) -> int:
        """Length of the major cycle, in broadcast units."""
        return len(self._slots)

    @property
    def pages(self) -> List[int]:
        """Sorted list of distinct pages carried by the broadcast."""
        return sorted(self._occurrences)

    @property
    def num_pages(self) -> int:
        """Number of distinct pages carried by the broadcast."""
        return len(self._occurrences)

    @property
    def empty_slots(self) -> int:
        """Number of padding slots per period."""
        return self.period - sum(len(o) for o in self._occurrences.values())

    def __contains__(self, page: int) -> bool:
        return page in self._occurrences

    def __len__(self) -> int:
        return self.period

    def occurrences(self, page: int) -> np.ndarray:
        """Sorted slot indices (within one period) where ``page`` appears."""
        try:
            return self._occurrences[page]
        except KeyError:
            raise ScheduleError(
                f"page {page} never appears on broadcast {self.label!r}"
            ) from None

    def broadcasts_per_period(self, page: int) -> int:
        """How many times ``page`` is transmitted each major cycle."""
        return len(self.occurrences(page))

    def frequency(self, page: int) -> float:
        """Broadcast frequency of ``page`` in transmissions per broadcast unit.

        This is the paper's *X*: the fraction of broadcast slots carrying
        the page.
        """
        return self.broadcasts_per_period(page) / self.period

    # -- timing --------------------------------------------------------------
    def next_arrival(self, page: int, time: float) -> float:
        """First completion instant of ``page`` strictly after ``time``.

        A request issued exactly at a completion instant has missed that
        transmission and waits for the next one, which matches the
        "monitor the broadcast and wait for the item to arrive" semantics
        of §2.1.

        Completions are the integers ``c`` with slot ``(c-1) % period``
        carrying ``page``; the first one strictly after ``time`` is at
        ``base = floor(time) + 1`` plus a wait that depends only on the
        slot ``base`` starts in.  Three precomputed forms answer it, in
        order of preference:

        1. fixed-gap pages (:meth:`fixed_gap`): ``(residue - base) %
           gap`` — O(1) integer arithmetic, no memory;
        2. irregular pages with a wait table (:meth:`wait_table`): one
           integer index;
        3. pages the table budget declined:
           :meth:`next_arrival_bisect`, the original bisection.

        All three return the exact same instant (asserted by the
        hypothesis property tests).
        """
        queries = self._tier_queries
        entry = self._fixed_gaps.get(page)
        if entry is None and page not in self._fixed_gaps:
            entry = self.fixed_gap(page)
        if entry is not None:
            if queries is not None:
                queries["closed_form"] += 1
            residue, gap = entry
            base = math.floor(time) + 1
            return float(base + (residue - base) % gap)
        table = self._wait_tables.get(page)
        if table is None:
            table = self.wait_table(page)
            if table is None:
                if queries is not None:
                    queries["bisect"] += 1
                return self.next_arrival_bisect(page, time)
        if queries is not None:
            queries["wait_table"] += 1
        base = math.floor(time) + 1
        return float(base + table[(base - 1) % len(self._slots)])

    def fixed_gap(self, page: int) -> Optional[Tuple[int, int]]:
        """``(residue, gap)`` when ``page`` has a fixed inter-arrival gap.

        The §2.1 property in closed form: when the occurrences of
        ``page`` are equally spaced (gap ``g``, so ``g`` divides the
        period), its completion instants are exactly the integers
        congruent to ``first_occurrence + 1`` modulo ``g``, and the
        next one after any instant ``t`` is
        ``base + (residue - base) % g`` with ``base = floor(t) + 1``.
        Returns ``None`` for pages with irregular spacing (those use
        the wait table or the bisection).  Cached after the first call.
        """
        entry = self._fixed_gaps.get(page)
        if entry is None and page not in self._fixed_gaps:
            occ = self.occurrences(page)
            count = len(occ)
            entry = None
            if self.period % count == 0:
                gap = self.period // count
                first = int(occ[0])
                # Equally spaced iff occ is the arithmetic progression
                # first + j*gap (the wrap gap is then gap as well,
                # because count * gap == period).
                if count == 1 or np.array_equal(
                    occ, first + gap * np.arange(count, dtype=np.int64)
                ):
                    entry = ((first + 1) % gap, gap)
            self._fixed_gaps[page] = entry
        return entry

    def next_arrival_bisect(self, page: int, time: float) -> float:
        """Reference :meth:`next_arrival`: bisection into the occurrences.

        This is the pre-table implementation, kept verbatim as (a) the
        fallback when the wait-table budget is exhausted and (b) the
        golden model the property tests and ``benchmarks/bench_engine.py``
        compare the table arithmetic against.
        """
        occ = self.occurrences(page)
        cycle, phase = divmod(time, self.period)
        base = cycle * self.period
        # Completion of slot s is at s+1; we need s+1 > phase, i.e. s > phase-1.
        index = bisect_right(occ, phase - 1.0)
        if index < len(occ):
            candidate = base + float(occ[index]) + 1.0
            if candidate > time:
                return candidate
            index += 1
            if index < len(occ):
                return base + float(occ[index]) + 1.0
        return base + self.period + float(occ[0]) + 1.0

    def wait_table(self, page: int) -> Optional[np.ndarray]:
        """The page's wait table, built on first use; None if over budget.

        Entry ``w[s]`` is the number of slots from slot ``s`` to the
        next occurrence of ``page`` at or after ``s``, cyclically, so
        ``next_arrival(page, t) == floor(t) + 1 + w[floor(t) % period]``.
        The table is an immutable int64 array costing ``8 * period``
        bytes, charged against the schedule's ``wait_table_budget``;
        once the budget is exhausted further pages are declined
        permanently and keep using the bisection path.
        """
        table = self._wait_tables.get(page)
        if table is not None:
            return table
        if page in self._wait_tables_declined:
            return None
        occ = self.occurrences(page)
        cost = 8 * self.period
        if self._wait_table_bytes + cost > self._wait_table_budget:
            self._wait_tables_declined.add(page)
            return None
        slots = np.arange(self.period, dtype=np.int64)
        bounds = np.concatenate([occ, occ[:1] + self.period])
        table = bounds[np.searchsorted(occ, slots, side="left")] - slots
        table.flags.writeable = False
        self._wait_tables[page] = table
        self._wait_table_bytes += cost
        return table

    @property
    def wait_table_budget(self) -> int:
        """Byte budget for lazily-built wait tables on this schedule."""
        return self._wait_table_budget

    def enable_timing_counters(self) -> None:
        """Start counting :meth:`next_arrival` queries per timing tier.

        Off by default: the counters cost the hot path a dict increment
        per query, so only profiled runs (``--profile``) switch them on.
        Idempotent — enabling twice keeps the accumulated counts.  Note
        that direct :meth:`next_arrival_bisect` calls (the reference
        engine's arithmetic) bypass :meth:`next_arrival` and are not
        counted; the counters attribute dispatched queries only.
        """
        if self._tier_queries is None:
            self._tier_queries = {
                "closed_form": 0, "wait_table": 0, "bisect": 0,
            }

    def timing_queries(self) -> Dict[str, int]:
        """Per-tier ``next_arrival`` query counts (zeros when disabled)."""
        if self._tier_queries is None:
            return {"closed_form": 0, "wait_table": 0, "bisect": 0}
        return dict(self._tier_queries)

    def timing_stats(self) -> Dict[str, object]:
        """Occupancy of the lazily-built timing structures.

        Useful for asserting that a shared schedule (via
        :class:`~repro.exec.build.BuildCache`) reuses its tables across
        sweep points instead of rebuilding them.  The ``queries``
        sub-dict carries the per-tier dispatch counts of
        :meth:`next_arrival` — all zeros unless
        :meth:`enable_timing_counters` was called.
        """
        return {
            "fixed_gap_entries": len(self._fixed_gaps),
            "wait_tables": len(self._wait_tables),
            "wait_table_bytes": self._wait_table_bytes,
            "wait_table_budget": self._wait_table_budget,
            "wait_tables_declined": len(self._wait_tables_declined),
            "nonempty_index_built": int(self._nonempty_slots is not None),
            "queries": self.timing_queries(),
        }

    def wait_time(self, page: int, time: float) -> float:
        """Delay a request issued at ``time`` experiences for ``page``."""
        return self.next_arrival(page, time) - time

    # -- batched timing ------------------------------------------------------
    def regular_timing(self) -> Tuple[np.ndarray, np.ndarray]:
        """Per-page ``(residue, gap)`` arrays for vectorized timing.

        Index ``p`` of the two immutable int64 arrays holds the
        :meth:`fixed_gap` pair of physical page ``p``; a gap of ``0``
        marks pages that are irregular (or absent from the broadcast)
        and must take a scalar tier instead.  Built once over every
        carried page and cached — the batch engine's columnar clock
        arithmetic indexes these directly.
        """
        cached = self._regular_timing
        if cached is None:
            size = max(self._occurrences) + 1
            residue = np.zeros(size, dtype=np.int64)
            gap = np.zeros(size, dtype=np.int64)
            for page in self._occurrences:
                entry = self.fixed_gap(page)
                if entry is not None:
                    residue[page], gap[page] = entry
            residue.flags.writeable = False
            gap.flags.writeable = False
            cached = (residue, gap)
            self._regular_timing = cached
        return cached

    def next_arrival_batch(
        self, pages: np.ndarray, times: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`next_arrival` over parallel arrays.

        ``pages[i]`` is queried at ``times[i]``; the result array holds
        the same completion instants scalar queries would return.
        Fixed-gap pages (every page of a §2.2 multidisk program) are
        answered in one closed-form array expression; irregular pages
        fall back to scalar :meth:`next_arrival` element by element, so
        the wait-table/bisect hierarchy still applies.  Tier counters,
        when enabled, attribute the vectorized elements to
        ``closed_form`` in bulk and let the scalar fallback count its
        own dispatches.
        """
        pages = np.asarray(pages, dtype=np.int64)
        times = np.asarray(times, dtype=np.float64)
        residue, gap = self.regular_timing()
        size = len(gap)
        clipped = np.clip(pages, 0, size - 1)
        gaps = gap.take(clipped)
        regular = (pages == clipped) & (pages >= 0) & (gaps > 0)
        base = np.floor(times).astype(np.int64) + 1
        safe_gaps = np.where(regular, gaps, 1)
        arrivals = (
            base + (residue.take(clipped) - base) % safe_gaps
        ).astype(np.float64)
        if not regular.all():
            for index in np.nonzero(~regular)[0]:
                arrivals[index] = self.next_arrival(
                    int(pages[index]), float(times[index])
                )
        queries = self._tier_queries
        if queries is not None:
            queries["closed_form"] += int(regular.sum())
        return arrivals

    def gaps(self, page: int) -> np.ndarray:
        """Inter-arrival gaps (slot counts) between successive broadcasts."""
        occ = self.occurrences(page)
        if len(occ) == 1:
            return np.asarray([self.period], dtype=np.int64)
        diffs = np.diff(occ)
        wrap = self.period - occ[-1] + occ[0]
        return np.concatenate([diffs, [wrap]])

    def has_fixed_interarrival(self, page: int) -> bool:
        """True when every gap between broadcasts of ``page`` is equal."""
        gaps = self.gaps(page)
        return bool(np.all(gaps == gaps[0]))

    def expected_delay(self, page: int) -> float:
        """Mean wait for ``page`` of a request at a uniform random time.

        With gaps ``g_1..g_k`` summing to the period ``P``, a request
        lands in gap ``j`` with probability ``g_j / P`` and then waits
        ``g_j / 2`` on average, giving ``sum(g_j^2) / (2 P)``.
        """
        gaps = self.gaps(page).astype(np.float64)
        return float(np.sum(gaps * gaps) / (2.0 * self.period))

    def delay_variance(self, page: int) -> float:
        """Variance of the wait for ``page`` under uniform random arrival.

        Within a gap of length ``g`` the wait is Uniform(0, g); mixing over
        gaps weighted by ``g/P`` gives ``E[W^2] = sum(g^3) / (3 P)``.
        """
        gaps = self.gaps(page).astype(np.float64)
        second_moment = float(np.sum(gaps**3) / (3.0 * self.period))
        mean = self.expected_delay(page)
        return second_moment - mean * mean

    def delay_cdf(self, page: int, wait: float) -> float:
        """P(W <= wait) for a uniformly-arriving request for ``page``.

        A request landing in a gap of length ``g`` (probability ``g/P``)
        waits Uniform(0, g]; conditioning on the gap gives
        ``P(W <= w) = (1/P) * sum_i min(w, g_i)``.
        """
        if wait < 0:
            return 0.0
        gaps = self.gaps(page).astype(np.float64)
        return float(np.minimum(wait, gaps).sum() / self.period)

    def delay_quantile(self, page: int, fraction: float) -> float:
        """The ``fraction``-quantile of the wait for ``page``.

        Computed exactly by inverting the piecewise-linear CDF: with the
        gaps sorted ascending, the CDF's slope drops by one gap at each
        gap length.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ScheduleError(
                f"quantile fraction must be in [0, 1], got {fraction}"
            )
        gaps = np.sort(self.gaps(page).astype(np.float64))
        period = float(self.period)
        target = fraction * period
        accumulated = 0.0  # sum of min(w, g_i) achieved so far
        previous = 0.0
        for index, gap in enumerate(gaps):
            active = len(gaps) - index  # gaps still growing with w
            segment = (gap - previous) * active
            if accumulated + segment >= target:
                return previous + (target - accumulated) / active
            accumulated += segment
            previous = gap
        return float(gaps[-1])

    def worst_case_delay(self, page: int) -> float:
        """The maximum possible wait for ``page``: its largest gap."""
        return float(self.gaps(page).max())

    def expected_delay_under(self, probabilities: Mapping[int, float]) -> float:
        """Access-probability-weighted mean delay (the paper's Table 1 metric).

        ``probabilities`` maps page id to access probability; pages with
        zero probability may be omitted.
        """
        total = 0.0
        for page, probability in probabilities.items():
            if probability:
                total += probability * self.expected_delay(page)
        return total

    # -- slot iteration -------------------------------------------------------
    @property
    def nonempty_slots(self) -> np.ndarray:
        """Sorted slot offsets (one period) that carry a page.

        Built lazily on first use and cached; the channel uses it to
        jump straight to the next interesting completion instead of
        scanning the period slot by slot.
        """
        index = self._nonempty_slots
        if index is None:
            index = np.asarray(
                [s for s, page in enumerate(self._slots) if page != EMPTY_SLOT],
                dtype=np.int64,
            )
            index.flags.writeable = False
            self._nonempty_slots = index
        return index

    def next_nonempty_completion(self, time: float) -> float:
        """First completion instant strictly after ``time`` of any page.

        The non-empty analogue of :meth:`next_arrival`: the first
        integer ``c > time`` whose slot ``(c-1) % period`` carries a
        page, found by a searchsorted into :attr:`nonempty_slots` with
        a period wrap — O(log period) instead of the O(period) forward
        scan the channel used to do.
        """
        index = self.nonempty_slots
        base = math.floor(time) + 1
        slot = (base - 1) % self.period
        position = int(np.searchsorted(index, slot, side="left"))
        if position == len(index):
            return float(base + self.period - slot + int(index[0]))
        return float(base + int(index[position]) - slot)

    def page_at(self, slot_time: float) -> Optional[int]:
        """Page occupying the slot that contains instant ``slot_time``.

        Returns ``None`` for padding slots.
        """
        slot = int(math.floor(slot_time)) % self.period
        page = self._slots[slot]
        return None if page == EMPTY_SLOT else page

    def completions_in(self, start: float, stop: float):
        """Yield ``(time, page)`` completions in ``(start, stop]``, in order.

        Used by the process-oriented engine and the prefetching client,
        which observe every page going by rather than only the ones they
        asked for.
        """
        first = int(math.floor(start))  # slot whose completion is first+1
        last = int(math.ceil(stop)) - 1
        for slot in range(first, last + 1):
            completion = slot + 1.0
            if completion <= start or completion > stop:
                continue
            page = self._slots[slot % self.period]
            if page != EMPTY_SLOT:
                yield completion, page

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<BroadcastSchedule {self.label!r} period={self.period} "
            f"pages={self.num_pages} empty={self.empty_slots}>"
        )


class BroadcastProgram:
    """A C-row broadcast program: one :class:`BroadcastSchedule` per channel.

    The paper fixes a single broadcast channel; a multi-channel server
    (after the multi-channel data-broadcast model of Kenyon, Schabanel
    and Young, cs/0205012) partitions the database across ``C`` parallel
    channels, each carrying its own §2.2 periodic schedule at the same
    per-channel slot rate.  A client owns a single-frequency tuner and
    listens to exactly one channel at a time; switching channels costs a
    configurable number of slots (see ``client/client.py``).

    The rows must *partition* the pages: every page appears on exactly
    one channel.  Timing queries delegate to the owning row, so a
    program duck-types the read-only surface of a single schedule
    (``next_arrival``, ``fixed_gap``, ``frequency``, ``__contains__``,
    ``timing_stats``, ...) and slots into the engines and monitors
    unchanged.  A one-row program is byte-identical to its single
    schedule; the ``channels == 1`` configuration path never constructs
    a program at all, so the legacy pipeline is untouched.
    """

    def __init__(self, channels: Sequence[BroadcastSchedule], label: str = ""):
        rows = tuple(channels)
        if not rows:
            raise ScheduleError("a broadcast program needs at least one channel")
        for index, row in enumerate(rows):
            if not isinstance(row, BroadcastSchedule):
                raise ScheduleError(
                    f"channel {index} is {type(row).__name__}, "
                    "expected BroadcastSchedule"
                )
        channel_of: Dict[int, int] = {}
        for index, row in enumerate(rows):
            for page in row.pages:
                if page in channel_of:
                    raise ScheduleError(
                        f"page {page} appears on channels "
                        f"{channel_of[page]} and {index}; channel rows "
                        "must partition the pages"
                    )
                channel_of[page] = index
        self._channels = rows
        self._channel_of = channel_of
        self._channel_array: Optional[np.ndarray] = None
        self._regular_timing: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self.label = label or f"program[{'x'.join(r.label or '?' for r in rows)}]"

    # -- structure -----------------------------------------------------------
    @property
    def channels(self) -> Tuple[BroadcastSchedule, ...]:
        """The per-channel schedule rows, channel 0 first."""
        return self._channels

    @property
    def num_channels(self) -> int:
        return len(self._channels)

    @property
    def pages(self) -> Tuple[int, ...]:
        """All pages carried by the program, across every channel."""
        return tuple(sorted(self._channel_of))

    @property
    def num_pages(self) -> int:
        return len(self._channel_of)

    @property
    def period(self) -> int:
        """Longest per-channel major cycle (the program repeats every
        ``lcm`` of the rows, but reporting uses the slowest row)."""
        return max(row.period for row in self._channels)

    @property
    def total_slots(self) -> int:
        """Aggregate slots per reporting period across all channels."""
        return sum(row.period for row in self._channels)

    @property
    def empty_slots(self) -> int:
        return sum(row.empty_slots for row in self._channels)

    @property
    def utilisation(self) -> float:
        """Fraction of all channel slots carrying a page."""
        return 1.0 - self.empty_slots / self.total_slots

    def channel_utilisation(self) -> Tuple[float, ...]:
        """Per-channel slot utilisation, channel 0 first."""
        return tuple(
            1.0 - row.empty_slots / row.period for row in self._channels
        )

    def channel_schedule(self, index: int) -> BroadcastSchedule:
        """The schedule broadcast on channel ``index``."""
        try:
            return self._channels[index]
        except IndexError:
            raise ScheduleError(
                f"channel {index} outside program "
                f"[0, {self.num_channels})"
            ) from None

    def channel_of(self, page: int) -> int:
        """Index of the channel carrying ``page``."""
        try:
            return self._channel_of[page]
        except KeyError:
            raise ScheduleError(
                f"page {page} never appears on program {self.label!r}"
            ) from None

    def channel_map(self) -> Dict[int, int]:
        """A fresh ``page -> channel`` dict (for tuner hot loops)."""
        return dict(self._channel_of)

    def channel_array(self) -> np.ndarray:
        """Dense ``page -> channel`` int64 lookup for vectorized tuners.

        Index ``p`` holds the channel carrying physical page ``p``;
        pages absent from the program map to channel 0 (the scalar
        tuner raises on them, but a columnar engine only ever queries
        carried pages, so the filler is never observed).  Built once and
        cached read-only.
        """
        cached = self._channel_array
        if cached is None:
            size = max(self._channel_of) + 1
            cached = np.zeros(size, dtype=np.int64)
            for page, channel in self._channel_of.items():
                cached[page] = channel
            cached.flags.writeable = False
            self._channel_array = cached
        return cached

    def __contains__(self, page: int) -> bool:
        return page in self._channel_of

    def __len__(self) -> int:
        return self.period

    # -- delegated timing ----------------------------------------------------
    def schedule_of(self, page: int) -> BroadcastSchedule:
        """The row that carries ``page`` (its timing authority)."""
        return self._channels[self.channel_of(page)]

    def occurrences(self, page: int) -> np.ndarray:
        return self.schedule_of(page).occurrences(page)

    def broadcasts_per_period(self, page: int) -> int:
        return self.schedule_of(page).broadcasts_per_period(page)

    def frequency(self, page: int) -> float:
        """Transmissions of ``page`` per broadcast unit *on its channel*.

        Channels run in parallel at the same slot rate, so this is
        directly comparable with the single-channel figure the cache
        policies consume.
        """
        return self.schedule_of(page).frequency(page)

    def next_arrival(self, page: int, time: float) -> float:
        return self.schedule_of(page).next_arrival(page, time)

    def next_arrival_bisect(self, page: int, time: float) -> float:
        return self.schedule_of(page).next_arrival_bisect(page, time)

    def fixed_gap(self, page: int) -> Optional[Tuple[int, int]]:
        return self.schedule_of(page).fixed_gap(page)

    def wait_time(self, page: int, time: float) -> float:
        return self.next_arrival(page, time) - time

    def expected_delay(self, page: int) -> float:
        return self.schedule_of(page).expected_delay(page)

    # -- batched timing ------------------------------------------------------
    def regular_timing(self) -> Tuple[np.ndarray, np.ndarray]:
        """Per-page ``(residue, gap)`` arrays over the whole C-row grid.

        The rows partition the pages, so the per-row
        :meth:`BroadcastSchedule.regular_timing` arrays merge into one
        dense pair indexed by physical page — identical in shape and
        meaning to the single-schedule form.  Each entry is the owning
        row's :meth:`fixed_gap` pair; a gap of ``0`` marks irregular
        (or absent) pages that must take a scalar tier.  Residues are
        defined modulo their own gap, so the closed form needs no
        common period across rows.
        """
        cached = self._regular_timing
        if cached is None:
            size = max(self._channel_of) + 1
            residue = np.zeros(size, dtype=np.int64)
            gap = np.zeros(size, dtype=np.int64)
            for page, channel in self._channel_of.items():
                entry = self._channels[channel].fixed_gap(page)
                if entry is not None:
                    residue[page], gap[page] = entry
            residue.flags.writeable = False
            gap.flags.writeable = False
            cached = (residue, gap)
            self._regular_timing = cached
        return cached

    def next_arrival_batch(
        self, pages: np.ndarray, times: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`next_arrival` over parallel arrays.

        Same contract as
        :meth:`BroadcastSchedule.next_arrival_batch`, over the merged
        C-row timing grid: fixed-gap pages (every page of a §2.2
        per-channel row) are answered in one closed-form expression and
        irregular pages fall back to scalar :meth:`next_arrival` on
        their owning row.  Tier counters, when enabled, attribute the
        vectorized elements to each row's ``closed_form`` tier by
        channel; the scalar fallback counts its own dispatches.
        """
        pages = np.asarray(pages, dtype=np.int64)
        times = np.asarray(times, dtype=np.float64)
        residue, gap = self.regular_timing()
        size = len(gap)
        clipped = np.clip(pages, 0, size - 1)
        gaps = gap.take(clipped)
        regular = (pages == clipped) & (pages >= 0) & (gaps > 0)
        base = np.floor(times).astype(np.int64) + 1
        safe_gaps = np.where(regular, gaps, 1)
        arrivals = (
            base + (residue.take(clipped) - base) % safe_gaps
        ).astype(np.float64)
        if not regular.all():
            for index in np.nonzero(~regular)[0]:
                arrivals[index] = self.next_arrival(
                    int(pages[index]), float(times[index])
                )
        if any(row._tier_queries is not None for row in self._channels):
            channels = self.channel_array().take(clipped[regular])
            counts = np.bincount(channels, minlength=self.num_channels)
            for index, row in enumerate(self._channels):
                queries = row._tier_queries
                if queries is not None:
                    queries["closed_form"] += int(counts[index])
        return arrivals

    # -- observability -------------------------------------------------------
    def enable_timing_counters(self) -> None:
        for row in self._channels:
            row.enable_timing_counters()

    def timing_queries(self) -> Dict[str, int]:
        totals = {"closed_form": 0, "wait_table": 0, "bisect": 0}
        for row in self._channels:
            for tier, count in row.timing_queries().items():
                totals[tier] += count
        return totals

    def timing_stats(self) -> Dict[str, object]:
        """Aggregate of the per-row :meth:`BroadcastSchedule.timing_stats`."""
        stats: Dict[str, object] = {
            "fixed_gap_entries": 0,
            "wait_tables": 0,
            "wait_table_bytes": 0,
            "wait_table_budget": 0,
            "wait_tables_declined": 0,
            "nonempty_index_built": 0,
        }
        for row in self._channels:
            for key, value in row.timing_stats().items():
                if key != "queries":
                    stats[key] += value
        stats["queries"] = self.timing_queries()
        return stats

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<BroadcastProgram {self.label!r} channels={self.num_channels} "
            f"period={self.period} pages={self.num_pages}>"
        )
