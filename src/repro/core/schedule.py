"""Periodic broadcast schedules and their timing queries.

A :class:`BroadcastSchedule` is an immutable periodic sequence of slots,
each carrying a physical page id (or :data:`~repro.core.chunks.EMPTY_SLOT`
for padding).  Slot ``s`` of cycle ``k`` occupies real time
``[k*period + s, k*period + s + 1)`` in broadcast units, and its page is
usable by a client at the *completion* instant ``k*period + s + 1``.

The class pre-computes each page's occurrence list so the two timing
queries the simulators need are cheap:

* :meth:`next_arrival` — the first completion of a page after a given
  time, found by bisection (O(log occurrences)).
* :meth:`expected_delay` — the closed-form mean wait of a uniformly
  arriving request, ``sum(g^2) / (2 * period)`` over the inter-arrival
  gaps ``g`` (the Bus Stop Paradox in formula form: for fixed gaps this is
  ``period / (2 * count)``; variance in the gaps strictly increases it).
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.chunks import EMPTY_SLOT
from repro.errors import ScheduleError


class BroadcastSchedule:
    """An immutable periodic broadcast program."""

    def __init__(self, slots: Sequence[int], label: str = ""):
        slots = [int(s) for s in slots]
        if not slots:
            raise ScheduleError("a broadcast schedule needs at least one slot")
        if any(s < 0 and s != EMPTY_SLOT for s in slots):
            raise ScheduleError("slots must hold page ids >= 0 or EMPTY_SLOT")
        self._slots: Tuple[int, ...] = tuple(slots)
        self.label = label
        self._occurrences: Dict[int, np.ndarray] = {}
        for index, page in enumerate(self._slots):
            if page == EMPTY_SLOT:
                continue
            self._occurrences.setdefault(page, []).append(index)  # type: ignore[arg-type]
        if not self._occurrences:
            raise ScheduleError("schedule contains only empty slots")
        for page, indices in self._occurrences.items():
            self._occurrences[page] = np.asarray(indices, dtype=np.int64)

    # -- structure ---------------------------------------------------------
    @property
    def slots(self) -> Tuple[int, ...]:
        """The page id (or EMPTY_SLOT) broadcast in each slot of one period."""
        return self._slots

    @property
    def period(self) -> int:
        """Length of the major cycle, in broadcast units."""
        return len(self._slots)

    @property
    def pages(self) -> List[int]:
        """Sorted list of distinct pages carried by the broadcast."""
        return sorted(self._occurrences)

    @property
    def num_pages(self) -> int:
        """Number of distinct pages carried by the broadcast."""
        return len(self._occurrences)

    @property
    def empty_slots(self) -> int:
        """Number of padding slots per period."""
        return self.period - sum(len(o) for o in self._occurrences.values())

    def __contains__(self, page: int) -> bool:
        return page in self._occurrences

    def __len__(self) -> int:
        return self.period

    def occurrences(self, page: int) -> np.ndarray:
        """Sorted slot indices (within one period) where ``page`` appears."""
        try:
            return self._occurrences[page]
        except KeyError:
            raise ScheduleError(
                f"page {page} never appears on broadcast {self.label!r}"
            ) from None

    def broadcasts_per_period(self, page: int) -> int:
        """How many times ``page`` is transmitted each major cycle."""
        return len(self.occurrences(page))

    def frequency(self, page: int) -> float:
        """Broadcast frequency of ``page`` in transmissions per broadcast unit.

        This is the paper's *X*: the fraction of broadcast slots carrying
        the page.
        """
        return self.broadcasts_per_period(page) / self.period

    # -- timing --------------------------------------------------------------
    def next_arrival(self, page: int, time: float) -> float:
        """First completion instant of ``page`` strictly after ``time``.

        A request issued exactly at a completion instant has missed that
        transmission and waits for the next one, which matches the
        "monitor the broadcast and wait for the item to arrive" semantics
        of §2.1.
        """
        occ = self.occurrences(page)
        cycle, phase = divmod(time, self.period)
        base = cycle * self.period
        # Completion of slot s is at s+1; we need s+1 > phase, i.e. s > phase-1.
        index = bisect_right(occ, phase - 1.0)
        if index < len(occ):
            candidate = base + float(occ[index]) + 1.0
            if candidate > time:
                return candidate
            index += 1
            if index < len(occ):
                return base + float(occ[index]) + 1.0
        return base + self.period + float(occ[0]) + 1.0

    def wait_time(self, page: int, time: float) -> float:
        """Delay a request issued at ``time`` experiences for ``page``."""
        return self.next_arrival(page, time) - time

    def gaps(self, page: int) -> np.ndarray:
        """Inter-arrival gaps (slot counts) between successive broadcasts."""
        occ = self.occurrences(page)
        if len(occ) == 1:
            return np.asarray([self.period], dtype=np.int64)
        diffs = np.diff(occ)
        wrap = self.period - occ[-1] + occ[0]
        return np.concatenate([diffs, [wrap]])

    def has_fixed_interarrival(self, page: int) -> bool:
        """True when every gap between broadcasts of ``page`` is equal."""
        gaps = self.gaps(page)
        return bool(np.all(gaps == gaps[0]))

    def expected_delay(self, page: int) -> float:
        """Mean wait for ``page`` of a request at a uniform random time.

        With gaps ``g_1..g_k`` summing to the period ``P``, a request
        lands in gap ``j`` with probability ``g_j / P`` and then waits
        ``g_j / 2`` on average, giving ``sum(g_j^2) / (2 P)``.
        """
        gaps = self.gaps(page).astype(np.float64)
        return float(np.sum(gaps * gaps) / (2.0 * self.period))

    def delay_variance(self, page: int) -> float:
        """Variance of the wait for ``page`` under uniform random arrival.

        Within a gap of length ``g`` the wait is Uniform(0, g); mixing over
        gaps weighted by ``g/P`` gives ``E[W^2] = sum(g^3) / (3 P)``.
        """
        gaps = self.gaps(page).astype(np.float64)
        second_moment = float(np.sum(gaps**3) / (3.0 * self.period))
        mean = self.expected_delay(page)
        return second_moment - mean * mean

    def delay_cdf(self, page: int, wait: float) -> float:
        """P(W <= wait) for a uniformly-arriving request for ``page``.

        A request landing in a gap of length ``g`` (probability ``g/P``)
        waits Uniform(0, g]; conditioning on the gap gives
        ``P(W <= w) = (1/P) * sum_i min(w, g_i)``.
        """
        if wait < 0:
            return 0.0
        gaps = self.gaps(page).astype(np.float64)
        return float(np.minimum(wait, gaps).sum() / self.period)

    def delay_quantile(self, page: int, fraction: float) -> float:
        """The ``fraction``-quantile of the wait for ``page``.

        Computed exactly by inverting the piecewise-linear CDF: with the
        gaps sorted ascending, the CDF's slope drops by one gap at each
        gap length.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ScheduleError(
                f"quantile fraction must be in [0, 1], got {fraction}"
            )
        gaps = np.sort(self.gaps(page).astype(np.float64))
        period = float(self.period)
        target = fraction * period
        accumulated = 0.0  # sum of min(w, g_i) achieved so far
        previous = 0.0
        for index, gap in enumerate(gaps):
            active = len(gaps) - index  # gaps still growing with w
            segment = (gap - previous) * active
            if accumulated + segment >= target:
                return previous + (target - accumulated) / active
            accumulated += segment
            previous = gap
        return float(gaps[-1])

    def worst_case_delay(self, page: int) -> float:
        """The maximum possible wait for ``page``: its largest gap."""
        return float(self.gaps(page).max())

    def expected_delay_under(self, probabilities: Mapping[int, float]) -> float:
        """Access-probability-weighted mean delay (the paper's Table 1 metric).

        ``probabilities`` maps page id to access probability; pages with
        zero probability may be omitted.
        """
        total = 0.0
        for page, probability in probabilities.items():
            if probability:
                total += probability * self.expected_delay(page)
        return total

    # -- slot iteration -------------------------------------------------------
    def page_at(self, slot_time: float) -> Optional[int]:
        """Page occupying the slot that contains instant ``slot_time``.

        Returns ``None`` for padding slots.
        """
        slot = int(math.floor(slot_time)) % self.period
        page = self._slots[slot]
        return None if page == EMPTY_SLOT else page

    def completions_in(self, start: float, stop: float):
        """Yield ``(time, page)`` completions in ``(start, stop]``, in order.

        Used by the process-oriented engine and the prefetching client,
        which observe every page going by rather than only the ones they
        asked for.
        """
        first = int(math.floor(start))  # slot whose completion is first+1
        last = int(math.ceil(stop)) - 1
        for slot in range(first, last + 1):
            completion = slot + 1.0
            if completion <= start or completion > stop:
                continue
            page = self._slots[slot % self.period]
            if page != EMPTY_SLOT:
                yield completion, page

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<BroadcastSchedule {self.label!r} period={self.period} "
            f"pages={self.num_pages} empty={self.empty_slots}>"
        )
