"""Channel assignment: partitioning a broadcast program across C channels.

The paper broadcasts over a single channel.  A multi-channel server
(Kenyon, Schabanel and Young's multi-channel data-broadcast model,
cs/0205012) runs ``C`` parallel channels at the same per-channel slot
rate and must decide which pages each channel carries.  Clients own a
single-frequency tuner — they listen to one channel at a time and pay a
retune cost to switch — so the assignment shapes both the per-channel
cycle lengths *and* how often a hot workload has to hop channels
(conflict-avoidance placement in the spirit of 2112.00449: pages that
are co-hot for the same clients should be spread across channels so
each channel's cycle stays short, but not so finely that every other
request retunes).

Two-stage optimiser, both stages deterministic:

:func:`assign_channels`
    **Greedy bandwidth-proportional split** — walk the pages
    hottest-to-coldest and put each on the currently least-loaded
    channel, where a page's load is its disk's relative frequency
    (its slot share in the §2.2 interleave).  This balances per-channel
    broadcast bandwidth, the multi-channel analogue of the paper's
    equal-slot-share disks.

    **Conflict-aware refinement** — hill-climb single-page moves over
    the hottest pages, minimising the analytic objective

    ``sum_c period_c * S_c  +  retune_cost * (1 - sum_c (q_c / Q)^2)``

    where ``S_c = sum_{p in c} prob(p) / (2 * rel_freq(p))`` makes the
    first term the probability-weighted mean delay (each page's §2.1
    fixed-gap wait is ``period_c / (2 * rel_freq)``), ``q_c`` is the
    probability mass on channel ``c`` and the second term is the
    steady-state chance two consecutive misses land on different
    channels — the expected retune surcharge.  Candidate moves are
    evaluated incrementally in O(num_disks).

:func:`build_program`
    Assignment plus per-channel §2.2 schedule construction: each
    channel's pages, grouped by their original disk, form a *virtual*
    sub-layout that goes through the unchanged
    :class:`~repro.core.chunks.ChunkPlan` interleave; virtual ids map
    back to physical pages in ascending order.  Every page therefore
    keeps a fixed inter-arrival gap of ``channel_period / rel_freq`` on
    its channel, and a one-channel program reproduces the single-channel
    slot sequence byte for byte.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.chunks import EMPTY_SLOT, ChunkPlan, lcm_many
from repro.core.disks import DiskLayout
from repro.core.schedule import BroadcastProgram, BroadcastSchedule
from repro.errors import ConfigurationError

#: Hot-page pool considered by the refinement pass.  Moves outside the
#: hottest pages cannot change the objective materially (their
#: probability mass is negligible by construction of the layouts).
_REFINE_CANDIDATES = 128

#: Upper bound on refinement rounds (one move per round); the climb
#: almost always converges in far fewer.
_REFINE_ROUNDS = 64

ASSIGNMENT_STRATEGIES = ("bandwidth", "conflict")


@dataclass(frozen=True)
class ChannelAssignment:
    """A partition of a layout's pages across broadcast channels.

    ``channels[c]`` is the ascending tuple of physical pages carried by
    channel ``c``.  Together the tuples cover every page exactly once.
    """

    layout: DiskLayout
    channels: Tuple[Tuple[int, ...], ...]

    @property
    def num_channels(self) -> int:
        return len(self.channels)

    def channel_map(self) -> Dict[int, int]:
        """A fresh ``page -> channel`` dict."""
        mapping: Dict[int, int] = {}
        for index, pages in enumerate(self.channels):
            for page in pages:
                mapping[page] = index
        return mapping


def _page_freqs(layout: DiskLayout) -> List[int]:
    """Per-page relative frequency, indexed by physical page id."""
    freqs: List[int] = []
    for size, freq in layout:
        freqs.extend([freq] * size)
    return freqs


def _counts_per_disk(layout: DiskLayout, pages: Sequence[int]) -> List[int]:
    """How many of ``pages`` live on each of the layout's disks."""
    counts = [0] * layout.num_disks
    bounds = [stop for _, stop in layout.disk_ranges()]
    disk = 0
    for page in sorted(pages):
        while page >= bounds[disk]:
            disk += 1
        counts[disk] += 1
    return counts


def _period_of_counts(layout: DiskLayout, counts: Sequence[int]) -> int:
    """Major cycle of the §2.2 program over a sub-layout.

    ``counts[d]`` pages of disk ``d`` (empty disks dropped): the chunk
    algebra gives ``max_chunks = lcm(freqs present)`` and a minor cycle
    of ``sum(ceil(count / (max_chunks // freq)))`` slots.
    """
    present = [
        (freq, count)
        for freq, count in zip(layout.rel_freqs, counts)
        if count
    ]
    if not present:
        return 0
    max_chunks = lcm_many([freq for freq, _ in present])
    minor = sum(
        math.ceil(count / (max_chunks // freq)) for freq, count in present
    )
    return max_chunks * minor


def _greedy_split(layout: DiskLayout, num_channels: int) -> List[List[int]]:
    """Bandwidth-proportional greedy: hottest-first, least-loaded channel.

    A page's bandwidth demand is its disk's relative frequency (its slot
    share per minor cycle), so channel loads track broadcast bandwidth.
    Ties break to the lowest channel index — fully deterministic.
    """
    freqs = _page_freqs(layout)
    loads = [0] * num_channels
    channels: List[List[int]] = [[] for _ in range(num_channels)]
    for page in range(layout.total_pages):
        target = min(range(num_channels), key=lambda c: (loads[c], c))
        channels[target].append(page)
        loads[target] += freqs[page]
    return channels


class _RefineState:
    """Incremental bookkeeping for the conflict-aware hill climb.

    Per channel: the per-disk page counts (enough to recompute the
    channel period in O(num_disks)), the delay factor
    ``S = sum prob / (2 * rel_freq)`` and the probability mass ``q``.
    """

    def __init__(
        self,
        layout: DiskLayout,
        channels: Sequence[Sequence[int]],
        probabilities: Mapping[int, float],
        retune_cost: float,
    ):
        self.layout = layout
        self.retune_cost = retune_cost
        self.freqs = _page_freqs(layout)
        self.prob = [probabilities.get(page, 0.0) for page in range(layout.total_pages)]
        self.total_mass = sum(self.prob)
        self.channel_of = {}
        self.counts: List[List[int]] = []
        self.sizes: List[int] = []
        self.delay_factor: List[float] = []
        self.mass: List[float] = []
        for index, pages in enumerate(channels):
            self.counts.append(_counts_per_disk(layout, pages))
            self.sizes.append(len(pages))
            self.delay_factor.append(
                sum(self.prob[p] / (2.0 * self.freqs[p]) for p in pages)
            )
            self.mass.append(sum(self.prob[p] for p in pages))
            for page in pages:
                self.channel_of[page] = index

    def _delay_term(self, channel: int) -> float:
        period = _period_of_counts(self.layout, self.counts[channel])
        return period * self.delay_factor[channel]

    def _retune_term(self) -> float:
        if self.total_mass <= 0.0 or self.retune_cost == 0.0:
            return 0.0
        stay = sum((q / self.total_mass) ** 2 for q in self.mass)
        return self.retune_cost * (1.0 - stay)

    def objective(self) -> float:
        return (
            sum(self._delay_term(c) for c in range(len(self.counts)))
            + self._retune_term()
        )

    def move_gain(self, page: int, target: int) -> float:
        """Objective delta of moving ``page`` to ``target`` (negative = better)."""
        source = self.channel_of[page]
        before = self._delay_term(source) + self._delay_term(target)
        before_retune = self._retune_term()
        self._apply(page, source, target)
        after = self._delay_term(source) + self._delay_term(target)
        after_retune = self._retune_term()
        self._apply(page, target, source)
        return (after - before) + (after_retune - before_retune)

    def _apply(self, page: int, source: int, target: int) -> None:
        disk = self.layout.disk_of_page(page)
        weight = self.prob[page] / (2.0 * self.freqs[page])
        self.counts[source][disk] -= 1
        self.counts[target][disk] += 1
        self.sizes[source] -= 1
        self.sizes[target] += 1
        self.delay_factor[source] -= weight
        self.delay_factor[target] += weight
        self.mass[source] -= self.prob[page]
        self.mass[target] += self.prob[page]
        self.channel_of[page] = target

    def commit(self, page: int, target: int) -> None:
        self._apply(page, self.channel_of[page], target)


def _refine_split(
    layout: DiskLayout,
    channels: List[List[int]],
    probabilities: Mapping[int, float],
    retune_cost: float,
) -> List[List[int]]:
    """Conflict-aware hill climb over single-page moves (deterministic)."""
    num_channels = len(channels)
    state = _RefineState(layout, channels, probabilities, retune_cost)
    candidates = sorted(
        range(layout.total_pages),
        key=lambda p: (-state.prob[p], p),
    )[:_REFINE_CANDIDATES]
    for _ in range(_REFINE_ROUNDS):
        best_gain = -1e-9  # require a strict improvement
        best_move: Optional[Tuple[int, int]] = None
        for page in candidates:
            source = state.channel_of[page]
            if state.sizes[source] <= 1:
                continue  # never empty a channel
            for target in range(num_channels):
                if target == source:
                    continue
                gain = state.move_gain(page, target)
                if gain < best_gain:
                    best_gain = gain
                    best_move = (page, target)
        if best_move is None:
            break
        state.commit(*best_move)
    refined: List[List[int]] = [[] for _ in range(num_channels)]
    for page in range(layout.total_pages):
        refined[state.channel_of[page]].append(page)
    return refined


def assign_channels(
    layout: DiskLayout,
    num_channels: int,
    *,
    probabilities: Optional[Mapping[int, float]] = None,
    assignment: str = "conflict",
    retune_cost: float = 1.0,
) -> ChannelAssignment:
    """Partition the layout's pages across ``num_channels`` channels.

    ``assignment`` selects the strategy: ``"bandwidth"`` stops after the
    greedy bandwidth-proportional split; ``"conflict"`` (the default)
    additionally runs the conflict-aware refinement pass, guided by
    ``probabilities`` (page -> access probability; uniform when omitted)
    and the tuner's ``retune_cost``.
    """
    num_channels = int(num_channels)
    if num_channels < 1:
        raise ConfigurationError(
            f"need at least one channel, got {num_channels}"
        )
    if num_channels > layout.total_pages:
        raise ConfigurationError(
            f"{num_channels} channels for {layout.total_pages} pages: "
            "every channel must carry at least one page"
        )
    if assignment not in ASSIGNMENT_STRATEGIES:
        raise ConfigurationError(
            f"unknown assignment strategy {assignment!r}; "
            f"valid strategies: {', '.join(ASSIGNMENT_STRATEGIES)}"
        )
    if retune_cost < 0:
        raise ConfigurationError(
            f"retune cost must be >= 0, got {retune_cost}"
        )
    channels = _greedy_split(layout, num_channels)
    if assignment == "conflict" and num_channels > 1:
        if probabilities is None:
            uniform = 1.0 / layout.total_pages
            probabilities = {
                page: uniform for page in range(layout.total_pages)
            }
        channels = _refine_split(layout, channels, probabilities, retune_cost)
    return ChannelAssignment(
        layout=layout,
        channels=tuple(tuple(sorted(pages)) for pages in channels),
    )


def channel_schedule(
    layout: DiskLayout, pages: Sequence[int], *, label: str = ""
) -> BroadcastSchedule:
    """The §2.2 schedule one channel broadcasts for its slice of pages.

    The channel's pages, grouped by their original disk, form a virtual
    sub-layout (empty disks dropped; the non-increasing frequency order
    is inherited from the parent) that goes through the unchanged
    :class:`~repro.core.chunks.ChunkPlan` interleave.  Virtual page ids
    are then mapped back to physical ids in ascending order, preserving
    hottest-to-coldest within the channel.
    """
    pages = sorted(int(page) for page in pages)
    if not pages:
        raise ConfigurationError("a channel must carry at least one page")
    counts = _counts_per_disk(layout, pages)
    sub_sizes = [count for count in counts if count]
    sub_freqs = [
        freq for freq, count in zip(layout.rel_freqs, counts) if count
    ]
    sub_layout = DiskLayout(sub_sizes, sub_freqs)
    slots = ChunkPlan.for_layout(sub_layout).interleave()
    translated = [
        EMPTY_SLOT if slot == EMPTY_SLOT else pages[slot] for slot in slots
    ]
    return BroadcastSchedule(translated, label=label)


def build_program(
    layout: DiskLayout,
    num_channels: int,
    *,
    probabilities: Optional[Mapping[int, float]] = None,
    assignment: str = "conflict",
    retune_cost: float = 1.0,
    label: str = "",
) -> BroadcastProgram:
    """Assign channels and build the full C-row broadcast program."""
    plan = assign_channels(
        layout,
        num_channels,
        probabilities=probabilities,
        assignment=assignment,
        retune_cost=retune_cost,
    )
    base = label or f"multidisk{layout.describe()}"
    rows = [
        channel_schedule(layout, pages, label=f"{base}[ch{index}]")
        for index, pages in enumerate(plan.channels)
    ]
    return BroadcastProgram(rows, label=f"{base}x{num_channels}")
