"""LCM chunking: step 4 of the §2.2 program generation algorithm.

Each disk is split into ``num_chunks(i) = max_chunks / rel_freq(i)``
equal-size chunks, where ``max_chunks`` is the least common multiple of
the relative frequencies.  A minor cycle broadcasts one chunk of every
disk; ``max_chunks`` minor cycles make one major cycle (the period).

If a disk's size does not divide evenly into its chunk count, the trailing
chunks are padded with empty slots (§2.2 notes these can carry indexes or
extra copies of hot pages; we leave them empty and account for them in all
delay arithmetic).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import reduce
from typing import List, Sequence, Tuple

from repro.core.disks import DiskLayout
from repro.errors import ConfigurationError

#: Sentinel page id marking an unused (padding) broadcast slot.
EMPTY_SLOT = -1


def lcm_many(values: Sequence[int]) -> int:
    """Least common multiple of a non-empty sequence of positive integers."""
    if not values:
        raise ConfigurationError("lcm of an empty sequence is undefined")
    if any(v < 1 for v in values):
        raise ConfigurationError(f"lcm requires positive integers, got {values}")
    return reduce(math.lcm, values)


@dataclass(frozen=True)
class ChunkPlan:
    """The chunking arithmetic for one :class:`DiskLayout`.

    Attributes
    ----------
    max_chunks:
        LCM of the relative frequencies; the number of minor cycles per
        major cycle.
    num_chunks:
        Chunks per disk: ``max_chunks // rel_freq(i)``.
    chunk_sizes:
        Pages per chunk of each disk, ``ceil(size_i / num_chunks_i)``.
    minor_cycle_length:
        Slots per minor cycle: the sum of the chunk sizes.
    period:
        Slots per major cycle: ``max_chunks * minor_cycle_length``.
    padding_slots:
        Empty slots per major cycle introduced by uneven chunk splits.
    """

    layout: DiskLayout
    max_chunks: int
    num_chunks: Tuple[int, ...]
    chunk_sizes: Tuple[int, ...]
    minor_cycle_length: int
    period: int
    padding_slots: int

    @classmethod
    def for_layout(cls, layout: DiskLayout) -> "ChunkPlan":
        """Compute the chunking plan for ``layout``."""
        max_chunks = lcm_many(layout.rel_freqs)
        num_chunks = tuple(max_chunks // f for f in layout.rel_freqs)
        chunk_sizes = tuple(
            math.ceil(size / chunks)
            for size, chunks in zip(layout.sizes, num_chunks)
        )
        minor = sum(chunk_sizes)
        period = max_chunks * minor
        # Each disk occupies chunk_size slots in every minor cycle, i.e.
        # chunk_size * max_chunks slots per period, of which
        # size * rel_freq carry real pages; the rest is padding.
        occupied = sum(
            size * freq for size, freq in zip(layout.sizes, layout.rel_freqs)
        )
        padding = period - occupied
        return cls(
            layout=layout,
            max_chunks=max_chunks,
            num_chunks=num_chunks,
            chunk_sizes=chunk_sizes,
            minor_cycle_length=minor,
            period=period,
            padding_slots=padding,
        )

    @property
    def utilisation(self) -> float:
        """Fraction of broadcast slots carrying real pages."""
        return 1.0 - self.padding_slots / self.period

    def chunks_for_disk(self, disk: int) -> List[List[int]]:
        """The chunk contents (physical page ids) for one disk.

        Pages fill chunks in order; trailing slots of the final chunks are
        padded with :data:`EMPTY_SLOT` so that every chunk of a disk has
        identical length — the property that guarantees fixed per-page
        inter-arrival times.
        """
        pages = list(self.layout.pages_on_disk(disk))
        size = self.chunk_sizes[disk]
        count = self.num_chunks[disk]
        chunks = []
        for index in range(count):
            chunk = pages[index * size : (index + 1) * size]
            chunk.extend([EMPTY_SLOT] * (size - len(chunk)))
            chunks.append(chunk)
        return chunks

    def interleave(self) -> List[int]:
        """Produce the full major cycle (§2.2 step 5 pseudo-code).

        ::

            for minor in range(max_chunks):
                for disk in range(num_disks):
                    broadcast chunk C[disk, minor mod num_chunks(disk)]
        """
        per_disk_chunks = [
            self.chunks_for_disk(disk) for disk in range(self.layout.num_disks)
        ]
        slots: List[int] = []
        for minor in range(self.max_chunks):
            for disk in range(self.layout.num_disks):
                chunks = per_disk_chunks[disk]
                slots.extend(chunks[minor % len(chunks)])
        if len(slots) != self.period:
            raise ConfigurationError(
                f"internal chunking error: produced {len(slots)} slots, "
                f"expected period {self.period}"
            )
        return slots
