"""Broadcast program generators.

This module covers the program families the paper compares:

* :func:`multidisk_program` — the §2.2 algorithm (the paper's proposal):
  periodic, fixed per-page inter-arrival, bandwidth used exhaustively up
  to chunk padding.
* :func:`flat_program` — every page once per cycle (Datacycle/BCIS style).
* :func:`clustered_skewed_program` — repeated copies broadcast
  back-to-back (Figure 2(b)); used to demonstrate the Bus Stop Paradox.
* :func:`random_allocation_program` — slots drawn i.i.d. proportional to
  bandwidth shares (§2.1's "generated randomly according to those
  bandwidth allocations"); also subject to the Bus Stop Paradox.
* :func:`paper_example_programs` — the exact three 3-page programs of
  Figure 2 / Table 1.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

import numpy as np

from repro.core.chunks import EMPTY_SLOT, ChunkPlan
from repro.core.disks import DiskLayout
from repro.core.schedule import BroadcastSchedule
from repro.errors import ConfigurationError

__all__ = [
    "EMPTY_SLOT",
    "clustered_skewed_program",
    "flat_program",
    "multidisk_program",
    "paper_example_programs",
    "random_allocation_program",
]


def multidisk_program(
    layout: DiskLayout,
    label: str = "",
) -> BroadcastSchedule:
    """Generate the multi-disk broadcast program of §2.2.

    Physical pages ``0 .. layout.total_pages - 1`` are assumed already
    ordered hottest-to-coldest (step 1 of the algorithm); the logical →
    physical mapping layer (:mod:`repro.workload.mapping`) is responsible
    for any Offset/Noise re-ordering, exactly as in the paper's simulator.

    The resulting schedule is periodic with *fixed* inter-arrival time for
    every page: ``period / rel_freq(disk_of(page))`` broadcast units.
    """
    plan = ChunkPlan.for_layout(layout)
    slots = plan.interleave()
    return BroadcastSchedule(slots, label=label or f"multidisk{layout.describe()}")


def flat_program(num_pages: int, label: str = "flat") -> BroadcastSchedule:
    """A flat broadcast: each page exactly once per cycle (Figure 1)."""
    if num_pages < 1:
        raise ConfigurationError(f"need at least one page, got {num_pages}")
    return BroadcastSchedule(range(num_pages), label=label)


def clustered_skewed_program(
    copies: Mapping[int, int],
    label: str = "skewed",
) -> BroadcastSchedule:
    """A skewed program with repeated copies clustered together.

    ``copies`` maps page id to its number of consecutive transmissions per
    cycle; e.g. ``{0: 2, 1: 1, 2: 1}`` produces ``A A B C``, Figure 2(b).
    This is the *worst* arrangement for a given bandwidth allocation —
    the maximal-variance end of the Bus Stop Paradox.
    """
    if not copies:
        raise ConfigurationError("skewed program needs at least one page")
    slots = []
    for page in sorted(copies):
        count = copies[page]
        if count < 1:
            raise ConfigurationError(
                f"page {page} needs at least one copy, got {count}"
            )
        slots.extend([page] * count)
    return BroadcastSchedule(slots, label=label)


def random_allocation_program(
    shares: Mapping[int, float],
    length: int,
    rng: np.random.Generator,
    label: str = "random",
) -> BroadcastSchedule:
    """Randomly place slots allocated proportionally to ``shares``.

    §2.1 describes generating the broadcast "randomly according to those
    bandwidth allocations" and rejects it: the inter-arrival variance
    inflates expected delay (the Bus Stop Paradox), there is no usable
    period, and clients cannot sleep between known arrival times.  This
    baseline makes those claims measurable.

    Each page receives a slot count proportional to its share (largest-
    remainder apportionment, minimum one slot), and the resulting slot
    multiset is uniformly shuffled.  Holding the allocation *exact* while
    randomising placement isolates the variance penalty from any
    allocation error.
    """
    pages = sorted(page for page, share in shares.items() if share > 0)
    if not pages:
        raise ConfigurationError("random program needs a positive share")
    if length < len(pages):
        raise ConfigurationError(
            f"length {length} cannot host {len(pages)} distinct pages"
        )
    weights = np.asarray([shares[page] for page in pages], dtype=np.float64)
    ideal = weights / weights.sum() * length
    counts = np.maximum(1, np.floor(ideal).astype(np.int64))
    # Largest-remainder apportionment of the leftover slots (trim first
    # if the minimum-one rule overshot the length).
    while counts.sum() > length:
        candidates = np.flatnonzero(counts > 1)
        excess = (counts - ideal)[candidates]
        counts[candidates[np.argmax(excess)]] -= 1
    remainders = ideal - counts
    while counts.sum() < length:
        index = int(np.argmax(remainders))
        counts[index] += 1
        remainders[index] -= 1.0
    slots = np.repeat(np.asarray(pages, dtype=np.int64), counts)
    rng.shuffle(slots)
    return BroadcastSchedule(slots.tolist(), label=label)


def paper_example_programs() -> Dict[str, BroadcastSchedule]:
    """The three 3-page example programs of Figure 2 / Table 1.

    Pages are A=0, B=1, C=2.

    * ``flat``      — ``A B C`` (program (a))
    * ``skewed``    — ``A A B C`` (program (b): copies of A clustered)
    * ``multidisk`` — ``A B A C`` (program (c): A on a 2x-speed disk)
    """
    flat = BroadcastSchedule([0, 1, 2], label="flat(ABC)")
    skewed = BroadcastSchedule([0, 0, 1, 2], label="skewed(AABC)")
    multidisk = BroadcastSchedule([0, 1, 0, 2], label="multidisk(ABAC)")
    return {"flat": flat, "skewed": skewed, "multidisk": multidisk}


def schedule_for(
    layout: DiskLayout,
    *, label: str = "",
    rng: Optional[np.random.Generator] = None,
    kind: str = "multidisk",
    random_length: Optional[int] = None,
) -> BroadcastSchedule:
    """Convenience dispatcher used by the experiment configuration layer.

    ``kind`` selects among ``multidisk`` (default), ``flat`` (ignores the
    layout's frequencies), ``skewed`` (clustered copies per the layout's
    frequencies) and ``random`` (i.i.d. slots by bandwidth share, needs
    ``rng``).
    """
    if kind == "multidisk":
        return multidisk_program(layout, label=label)
    if kind == "flat":
        return flat_program(layout.total_pages, label=label or "flat")
    if kind == "skewed":
        copies = {}
        for disk in range(layout.num_disks):
            for page in layout.pages_on_disk(disk):
                copies[page] = layout.rel_freqs[disk]
        return clustered_skewed_program(copies, label=label or "skewed")
    if kind == "random":
        if rng is None:
            raise ConfigurationError("random schedules require an rng")
        shares = {}
        for disk in range(layout.num_disks):
            for page in layout.pages_on_disk(disk):
                shares[page] = float(layout.rel_freqs[disk])
        length = random_length or ChunkPlan.for_layout(layout).period
        return random_allocation_program(
            shares, length, rng, label=label or "random"
        )
    raise ConfigurationError(f"unknown schedule kind {kind!r}")
