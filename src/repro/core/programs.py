"""Broadcast program construction: :class:`ProgramSpec` and its builders.

This module covers the program families the paper compares:

* ``multidisk`` — the §2.2 algorithm (the paper's proposal): periodic,
  fixed per-page inter-arrival, bandwidth used exhaustively up to chunk
  padding.  With ``channels > 1`` the pages are partitioned across
  parallel channels (:mod:`repro.core.channels`) and each channel
  carries its own §2.2 row.
* ``flat`` — every page once per cycle (Datacycle/BCIS style).
* ``skewed`` — repeated copies broadcast back-to-back (Figure 2(b));
  used to demonstrate the Bus Stop Paradox.
* ``random`` — slots drawn i.i.d. proportional to bandwidth shares
  (§2.1's "generated randomly according to those bandwidth
  allocations"); also subject to the Bus Stop Paradox.
* :func:`paper_example_programs` — the exact three 3-page programs of
  Figure 2 / Table 1.

All construction goes through the keyword-only :class:`ProgramSpec`
declarative builder.  The 1.1-era free functions (``multidisk_program``
and friends) went through a one-release deprecation cycle in 1.2 and
were removed in 1.3; the underscore-prefixed internals remain for the
package's own call sites.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.chunks import EMPTY_SLOT, ChunkPlan
from repro.core.disks import DiskLayout
from repro.core.schedule import BroadcastProgram, BroadcastSchedule
from repro.errors import ConfigurationError

__all__ = [
    "EMPTY_SLOT",
    "ProgramSpec",
    "paper_example_programs",
]

#: Program families :class:`ProgramSpec` can build.
PROGRAM_KINDS = ("multidisk", "flat", "skewed", "random")


# ---------------------------------------------------------------------------
# Internal builders (no deprecation warnings; the package calls these).
# ---------------------------------------------------------------------------
def _multidisk_program(layout: DiskLayout, *, label: str = "") -> BroadcastSchedule:
    """The multi-disk broadcast program of §2.2.

    Physical pages ``0 .. layout.total_pages - 1`` are assumed already
    ordered hottest-to-coldest (step 1 of the algorithm); the logical →
    physical mapping layer (:mod:`repro.workload.mapping`) is responsible
    for any Offset/Noise re-ordering, exactly as in the paper's simulator.

    The resulting schedule is periodic with *fixed* inter-arrival time for
    every page: ``period / rel_freq(disk_of(page))`` broadcast units.
    """
    plan = ChunkPlan.for_layout(layout)
    slots = plan.interleave()
    return BroadcastSchedule(slots, label=label or f"multidisk{layout.describe()}")


def _flat_program(num_pages: int, *, label: str = "flat") -> BroadcastSchedule:
    """A flat broadcast: each page exactly once per cycle (Figure 1)."""
    if num_pages < 1:
        raise ConfigurationError(f"need at least one page, got {num_pages}")
    return BroadcastSchedule(range(num_pages), label=label)


def _clustered_skewed_program(
    copies: Mapping[int, int], *, label: str = "skewed"
) -> BroadcastSchedule:
    """A skewed program with repeated copies clustered together.

    ``copies`` maps page id to its number of consecutive transmissions per
    cycle; e.g. ``{0: 2, 1: 1, 2: 1}`` produces ``A A B C``, Figure 2(b).
    This is the *worst* arrangement for a given bandwidth allocation —
    the maximal-variance end of the Bus Stop Paradox.
    """
    if not copies:
        raise ConfigurationError("skewed program needs at least one page")
    slots = []
    for page in sorted(copies):
        count = copies[page]
        if count < 1:
            raise ConfigurationError(
                f"page {page} needs at least one copy, got {count}"
            )
        slots.extend([page] * count)
    return BroadcastSchedule(slots, label=label)


def _random_allocation_program(
    shares: Mapping[int, float],
    length: int,
    rng: np.random.Generator,
    *,
    label: str = "random",
) -> BroadcastSchedule:
    """Randomly place slots allocated proportionally to ``shares``.

    §2.1 describes generating the broadcast "randomly according to those
    bandwidth allocations" and rejects it: the inter-arrival variance
    inflates expected delay (the Bus Stop Paradox), there is no usable
    period, and clients cannot sleep between known arrival times.  This
    baseline makes those claims measurable.

    Each page receives a slot count proportional to its share (largest-
    remainder apportionment, minimum one slot), and the resulting slot
    multiset is uniformly shuffled.  Holding the allocation *exact* while
    randomising placement isolates the variance penalty from any
    allocation error.
    """
    pages = sorted(page for page, share in shares.items() if share > 0)
    if not pages:
        raise ConfigurationError("random program needs a positive share")
    if length < len(pages):
        raise ConfigurationError(
            f"length {length} cannot host {len(pages)} distinct pages"
        )
    weights = np.asarray([shares[page] for page in pages], dtype=np.float64)
    ideal = weights / weights.sum() * length
    counts = np.maximum(1, np.floor(ideal).astype(np.int64))
    # Largest-remainder apportionment of the leftover slots (trim first
    # if the minimum-one rule overshot the length).
    while counts.sum() > length:
        candidates = np.flatnonzero(counts > 1)
        excess = (counts - ideal)[candidates]
        counts[candidates[np.argmax(excess)]] -= 1
    remainders = ideal - counts
    while counts.sum() < length:
        index = int(np.argmax(remainders))
        counts[index] += 1
        remainders[index] -= 1.0
    slots = np.repeat(np.asarray(pages, dtype=np.int64), counts)
    rng.shuffle(slots)
    return BroadcastSchedule(slots.tolist(), label=label)


def _schedule_of_kind(
    layout: DiskLayout,
    *,
    label: str = "",
    rng: Optional[np.random.Generator] = None,
    kind: str = "multidisk",
    random_length: Optional[int] = None,
) -> BroadcastSchedule:
    """Single-channel dispatcher over the program families."""
    if kind == "multidisk":
        return _multidisk_program(layout, label=label)
    if kind == "flat":
        return _flat_program(layout.total_pages, label=label or "flat")
    if kind == "skewed":
        copies = {}
        for disk in range(layout.num_disks):
            for page in layout.pages_on_disk(disk):
                copies[page] = layout.rel_freqs[disk]
        return _clustered_skewed_program(copies, label=label or "skewed")
    if kind == "random":
        if rng is None:
            raise ConfigurationError("random schedules require an rng")
        shares = {}
        for disk in range(layout.num_disks):
            for page in layout.pages_on_disk(disk):
                shares[page] = float(layout.rel_freqs[disk])
        length = random_length or ChunkPlan.for_layout(layout).period
        return _random_allocation_program(
            shares, length, rng, label=label or "random"
        )
    raise ConfigurationError(f"unknown schedule kind {kind!r}")


# ---------------------------------------------------------------------------
# The declarative builder
# ---------------------------------------------------------------------------
@dataclass(frozen=True, kw_only=True)
class ProgramSpec:
    """Declarative description of a broadcast program, built in one call.

    Everything the scattered 1.1 free functions accepted — disk sizes,
    Δ-rule or explicit frequencies, the program family — plus the
    multi-channel knobs, in a single keyword-only object::

        layout, schedule = ProgramSpec(sizes=(500, 2000, 2500), delta=3).build()
        layout, program = ProgramSpec(
            sizes=(500, 2000, 2500), delta=3, channels=4,
        ).build()

    Parameters
    ----------
    sizes:
        Pages per disk, fastest first (required).
    delta:
        The §4.2 Δ-rule knob; ignored when ``rel_freqs`` is given.
    rel_freqs:
        Explicit relative frequencies overriding the Δ-rule.
    kind:
        Program family: ``multidisk`` (default), ``flat``, ``skewed`` or
        ``random``.
    channels / assignment / probabilities / retune_cost:
        Multi-channel controls (``kind="multidisk"`` only): the channel
        count, the :func:`~repro.core.channels.assign_channels` strategy
        (``"conflict"`` or ``"bandwidth"``), the access-probability
        estimate guiding the conflict refinement, and the tuner's
        channel-switch cost in slots.
    rng / random_length:
        Only for ``kind="random"``: the generator and slot count.
    label:
        Optional label stamped on the schedule.

    :meth:`build` returns ``(layout, schedule)`` where ``schedule`` is a
    :class:`~repro.core.schedule.BroadcastSchedule` for one channel or a
    :class:`~repro.core.schedule.BroadcastProgram` for several.
    """

    sizes: Tuple[int, ...]
    delta: int = 0
    rel_freqs: Optional[Tuple[int, ...]] = None
    kind: str = "multidisk"
    channels: int = 1
    assignment: str = "conflict"
    probabilities: Optional[Mapping[int, float]] = None
    retune_cost: float = 1.0
    rng: Optional[np.random.Generator] = field(default=None, compare=False)
    random_length: Optional[int] = None
    label: str = ""

    def __post_init__(self):
        object.__setattr__(self, "sizes", tuple(int(s) for s in self.sizes))
        if self.rel_freqs is not None:
            object.__setattr__(
                self, "rel_freqs", tuple(int(f) for f in self.rel_freqs)
            )
        if self.kind not in PROGRAM_KINDS:
            raise ConfigurationError(
                f"unknown program kind {self.kind!r}; "
                f"valid kinds: {', '.join(PROGRAM_KINDS)}"
            )
        if self.channels < 1:
            raise ConfigurationError(
                f"need at least one channel, got {self.channels}"
            )
        if self.channels > 1 and self.kind != "multidisk":
            raise ConfigurationError(
                f"multi-channel programs require kind='multidisk', "
                f"got kind={self.kind!r}"
            )
        if self.retune_cost < 0:
            raise ConfigurationError(
                f"retune cost must be >= 0, got {self.retune_cost}"
            )

    def build_layout(self) -> DiskLayout:
        """The :class:`DiskLayout` described by ``sizes``/``delta``/``rel_freqs``."""
        if self.rel_freqs is not None:
            return DiskLayout(self.sizes, self.rel_freqs)
        return DiskLayout.from_delta(self.sizes, self.delta)

    def build(
        self,
    ) -> Tuple[DiskLayout, Union[BroadcastSchedule, BroadcastProgram]]:
        """Build the layout and its broadcast schedule (or C-row program)."""
        layout = self.build_layout()
        if self.channels > 1:
            from repro.core.channels import build_program

            program = build_program(
                layout,
                self.channels,
                probabilities=self.probabilities,
                assignment=self.assignment,
                retune_cost=self.retune_cost,
                label=self.label,
            )
            return layout, program
        schedule = _schedule_of_kind(
            layout,
            label=self.label,
            rng=self.rng,
            kind=self.kind,
            random_length=self.random_length,
        )
        return layout, schedule


def paper_example_programs() -> Dict[str, BroadcastSchedule]:
    """The three 3-page example programs of Figure 2 / Table 1.

    Pages are A=0, B=1, C=2.

    * ``flat``      — ``A B C`` (program (a))
    * ``skewed``    — ``A A B C`` (program (b): copies of A clustered)
    * ``multidisk`` — ``A B A C`` (program (c): A on a 2x-speed disk)
    """
    flat = BroadcastSchedule([0, 1, 2], label="flat(ABC)")
    skewed = BroadcastSchedule([0, 0, 1, 2], label="skewed(AABC)")
    multidisk = BroadcastSchedule([0, 1, 0, 2], label="multidisk(ABAC)")
    return {"flat": flat, "skewed": skewed, "multidisk": multidisk}


