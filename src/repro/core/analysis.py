"""Closed-form delay analysis of broadcast programs.

This module reproduces the paper's analytic results without simulation:

* Table 1's expected delays for the Figure 2 example programs.
* The Bus Stop Paradox: for a fixed per-page bandwidth share, any
  variance in the inter-arrival gaps strictly increases expected delay
  (:func:`bus_stop_penalty` quantifies the excess over the fixed-gap
  floor).
* The multidisk layout's expected delay, computable directly from the
  chunk plan (each page's inter-arrival time is exactly
  ``period / rel_freq``).
* The square-root bandwidth-allocation rule: with item spacing free to be
  ideal, expected delay is minimised when a page's share of the channel
  is proportional to the square root of its access probability, giving a
  lower bound of ``(sum_i sqrt(p_i))^2 / 2`` for unit-length pages.
  The paper defers broadcast shaping to future work; this bound is the
  yardstick our :mod:`~repro.core.optimizer` searches against.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Sequence, Tuple

from repro.core.chunks import ChunkPlan
from repro.core.disks import DiskLayout
from repro.core.schedule import BroadcastSchedule
from repro.errors import ConfigurationError


def expected_delay(
    schedule: BroadcastSchedule,
    probabilities: Mapping[int, float],
) -> float:
    """Probability-weighted expected delay of ``schedule`` (Table 1 metric)."""
    return schedule.expected_delay_under(probabilities)


def per_page_expected_delay(schedule: BroadcastSchedule) -> Dict[int, float]:
    """Expected delay of each page carried by ``schedule``."""
    return {page: schedule.expected_delay(page) for page in schedule.pages}


def flat_expected_delay(num_pages: int) -> float:
    """Expected delay of a flat broadcast of ``num_pages`` pages.

    Half a broadcast period, regardless of access skew — e.g. 2500 for the
    paper's 5000-page server database.
    """
    if num_pages < 1:
        raise ConfigurationError(f"need at least one page, got {num_pages}")
    return num_pages / 2.0


def multidisk_expected_delay(
    layout: DiskLayout,
    probabilities: Mapping[int, float],
) -> float:
    """Analytic expected delay of the §2.2 program for ``layout``.

    Every page on disk ``i`` has fixed inter-arrival
    ``period / rel_freq(i)`` (with ``period`` including chunk padding), so
    its expected delay is half that.  Matches
    ``ProgramSpec(...).build()`` followed by
    ``schedule.expected_delay_under(probabilities)``
    exactly — a property the test suite checks — while being O(num_disks)
    instead of O(period).
    """
    plan = ChunkPlan.for_layout(layout)
    per_disk_delay = [
        plan.period / (2.0 * freq) for freq in layout.rel_freqs
    ]
    total = 0.0
    for page, probability in probabilities.items():
        if probability:
            total += probability * per_disk_delay[layout.disk_of_page(page)]
    return total


def bus_stop_penalty(schedule: BroadcastSchedule, page: int) -> float:
    """Excess expected delay of ``page`` over the fixed-gap floor.

    A page broadcast ``k`` times per period ``P`` cannot do better than
    gaps of exactly ``P/k`` (delay ``P/2k``).  The penalty is the actual
    expected delay minus that floor; it is zero iff the gaps are all
    equal, and grows with gap variance:

        penalty = Var(g) / (2 * mean(g))   over length-biased gaps.
    """
    floor = schedule.period / (2.0 * schedule.broadcasts_per_period(page))
    return schedule.expected_delay(page) - floor


def sqrt_rule_shares(probabilities: Mapping[int, float]) -> Dict[int, float]:
    """Optimal bandwidth share per page: proportional to sqrt(probability).

    Minimises ``sum_i p_i * s_i / 2`` subject to ``sum_i 1/s_i = 1`` where
    ``s_i`` is page *i*'s spacing; Lagrange multipliers give
    ``s_i ∝ 1/sqrt(p_i)``, i.e. share ``1/s_i ∝ sqrt(p_i)``.
    """
    roots = {
        page: math.sqrt(probability)
        for page, probability in probabilities.items()
        if probability > 0
    }
    if not roots:
        raise ConfigurationError("need at least one page with positive probability")
    total = sum(roots.values())
    return {page: root / total for page, root in roots.items()}


def sqrt_rule_lower_bound(probabilities: Mapping[int, float]) -> float:
    """Delay lower bound ``(sum_i sqrt(p_i))^2 / 2`` for unit-length pages.

    No periodic unit-page broadcast can achieve a smaller expected delay
    for the given access probabilities.  Real programs (integral
    frequencies, chunk padding) sit above this.
    """
    total_root = sum(
        math.sqrt(probability)
        for probability in probabilities.values()
        if probability > 0
    )
    return total_root * total_root / 2.0


def cached_p_expected_delay(
    layout: DiskLayout,
    probabilities: Mapping[int, float],
    cache_size: int,
    offset: int = 0,
) -> float:
    """Analytic steady-state response of an idealised P-cached client.

    Assumes no noise and the §5.3 steady state: the cache holds exactly
    the ``cache_size`` highest-probability logical pages (hits cost
    zero), every other page is fetched from its broadcast disk after the
    Offset-shifted mapping.  Setting ``offset = cache_size`` models the
    paper's best-broadcast arrangement.

    This closed form predicts the zero-noise column of Figure 8 (and of
    Figure 9 — P and PIX coincide without noise) up to the think-time
    phase correlation the simulation exhibits.
    """
    if cache_size < 0:
        raise ConfigurationError(f"cache_size must be >= 0, got {cache_size}")
    plan = ChunkPlan.for_layout(layout)
    per_disk_delay = [plan.period / (2.0 * freq) for freq in layout.rel_freqs]
    total = layout.total_pages
    # The cache holds the cache_size hottest pages; a 1-page cache is
    # the paper's "no caching" convention and holds nothing useful.
    cached = set()
    if cache_size > 1:
        by_heat = sorted(
            probabilities, key=lambda page: probabilities[page], reverse=True
        )
        cached = set(by_heat[:cache_size])
    delay = 0.0
    for page, probability in probabilities.items():
        if not probability or page in cached:
            continue
        physical = (page - offset) % total
        delay += probability * per_disk_delay[layout.disk_of_page(physical)]
    return delay


def table1_rows() -> Sequence[Tuple[Tuple[float, float, float], Dict[str, float]]]:
    """Reproduce Table 1: expected delay of the Figure 2 programs.

    Returns one entry per access-probability row of the paper's table:
    ``((pA, pB, pC), {"flat": d, "skewed": d, "multidisk": d})``.
    """
    from repro.core.programs import paper_example_programs

    programs = paper_example_programs()
    rows = []
    mixes = [
        (1 / 3, 1 / 3, 1 / 3),
        (0.50, 0.25, 0.25),
        (0.75, 0.125, 0.125),
        (0.90, 0.05, 0.05),
        (1.00, 0.00, 0.00),
    ]
    for mix in mixes:
        probabilities = {0: mix[0], 1: mix[1], 2: mix[2]}
        delays = {
            name: expected_delay(program, probabilities)
            for name, program in programs.items()
        }
        rows.append((mix, delays))
    return rows


def program_comparison(
    layout: DiskLayout,
    probabilities: Mapping[int, float],
    *, rng=None,
    random_trials: int = 8,
) -> Dict[str, float]:
    """Expected delay of flat / skewed / random / multidisk for one layout.

    The random program's delay is averaged over ``random_trials``
    independent draws (it has no closed form).  Demonstrates §2.1's
    ordering multidisk <= skewed and multidisk <= random for skewed access.
    """
    from repro.core.programs import _schedule_of_kind

    results: Dict[str, float] = {
        "flat": flat_expected_delay(layout.total_pages),
        "multidisk": multidisk_expected_delay(layout, probabilities),
        "skewed": expected_delay(
            _schedule_of_kind(layout, kind="skewed"), probabilities
        ),
    }
    if rng is not None:
        total = 0.0
        for _trial in range(random_trials):
            program = _schedule_of_kind(layout, kind="random", rng=rng)
            total += expected_delay(program, probabilities)
        results["random"] = total / random_trials
    return results
