"""Broadcast shaping: choosing disks, sizes and speeds for a workload.

The paper (§2.2, §7) leaves "how many disks, what sizes, what relative
speeds" as an open optimisation problem and promises future analytic
work.  This module provides a practical solver for the restricted design
space the paper itself uses:

* pages are already ordered hottest-to-coldest;
* disks are contiguous ranges over that order;
* relative speeds follow the Δ-rule of §4.2 (or arbitrary integer
  frequency vectors via :func:`search_frequencies`).

The objective is the *exact* analytic expected delay of the generated
program (including chunk-padding overhead), so the optimiser's output is
directly comparable to the simulation results.

Algorithms
----------
:func:`optimize_layout`
    Exhaustive search over cut-point partitions drawn from a candidate
    grid (by default the workload's region boundaries — finer cuts than
    the probability plateaus cannot help) crossed with a Δ range.  For
    the paper's scale (20 regions, <=4 disks, Δ<=10) this is thousands of
    evaluations and runs in well under a second.
:func:`greedy_layout`
    A fast hill-climbing alternative for large candidate grids.
:func:`search_frequencies`
    Fix the partition, search small integer frequency vectors directly
    (covers ratios the Δ-rule cannot express, e.g. 3:2).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.analysis import multidisk_expected_delay, sqrt_rule_lower_bound
from repro.core.disks import DiskLayout
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ShapingResult:
    """Outcome of a broadcast-shaping search."""

    layout: DiskLayout
    delta: Optional[int]
    expected_delay: float
    lower_bound: float
    evaluated: int

    @property
    def optimality_gap(self) -> float:
        """Ratio of achieved delay to the square-root-rule lower bound."""
        if self.lower_bound <= 0:
            return float("inf")
        return self.expected_delay / self.lower_bound


def _as_probability_list(
    probabilities: Mapping[int, float], total_pages: int
) -> List[float]:
    dense = [0.0] * total_pages
    for page, probability in probabilities.items():
        if not 0 <= page < total_pages:
            raise ConfigurationError(
                f"page {page} outside database [0, {total_pages})"
            )
        dense[page] = probability
    return dense


def _default_cuts(dense: Sequence[float]) -> List[int]:
    """Candidate cut points: wherever the probability changes, plus the end.

    Cutting inside a constant-probability plateau can never beat cutting
    at its edges, so plateau boundaries are a sufficient candidate set.
    """
    cuts = [
        index
        for index in range(1, len(dense))
        if dense[index] != dense[index - 1]
    ]
    cuts.append(len(dense))
    return sorted(set(cuts))


def _evaluate(
    sizes: Sequence[int],
    delta: int,
    probabilities: Mapping[int, float],
) -> Tuple[DiskLayout, float]:
    layout = DiskLayout.from_delta(sizes, delta)
    return layout, multidisk_expected_delay(layout, probabilities)


def optimize_layout(
    probabilities: Mapping[int, float],
    total_pages: int,
    *, max_disks: int = 3,
    deltas: Iterable[int] = range(0, 8),
    cut_candidates: Optional[Sequence[int]] = None,
) -> ShapingResult:
    """Exhaustively search partitions x Δ for the minimum analytic delay.

    ``probabilities`` maps page id (hottest-to-coldest order) to access
    probability; omitted pages are cold (probability zero) but still
    consume broadcast slots, exactly like the paper's 4000 never-accessed
    pages.
    """
    if total_pages < 1:
        raise ConfigurationError(f"total_pages must be >= 1, got {total_pages}")
    if max_disks < 1:
        raise ConfigurationError(f"max_disks must be >= 1, got {max_disks}")
    dense = _as_probability_list(probabilities, total_pages)
    cuts = list(cut_candidates) if cut_candidates is not None else _default_cuts(dense)
    if cuts and cuts[-1] != total_pages:
        cuts.append(total_pages)
    interior = [c for c in cuts if 0 < c < total_pages]
    deltas = list(deltas)

    best: Optional[Tuple[DiskLayout, Optional[int], float]] = None
    evaluated = 0
    for num_disks in range(1, max_disks + 1):
        for boundary in itertools.combinations(interior, num_disks - 1):
            edges = [0, *boundary, total_pages]
            sizes = [b - a for a, b in zip(edges, edges[1:])]
            delta_options = [0] if num_disks == 1 else deltas
            for delta in delta_options:
                layout, delay = _evaluate(sizes, delta, probabilities)
                evaluated += 1
                if best is None or delay < best[2]:
                    best = (layout, delta, delay)
    assert best is not None  # num_disks=1 always evaluates
    layout, delta, delay = best
    return ShapingResult(
        layout=layout,
        delta=delta,
        expected_delay=delay,
        lower_bound=sqrt_rule_lower_bound(probabilities),
        evaluated=evaluated,
    )


def greedy_layout(
    probabilities: Mapping[int, float],
    total_pages: int,
    num_disks: int,
    *, deltas: Iterable[int] = range(0, 8),
    cut_candidates: Optional[Sequence[int]] = None,
    max_rounds: int = 16,
) -> ShapingResult:
    """Hill-climb one cut point at a time; cheaper than the full search.

    Starts from an even partition over the candidate grid and repeatedly
    moves the single cut whose relocation most reduces delay, re-fitting Δ
    each round, until no move helps.
    """
    if num_disks < 2:
        raise ConfigurationError("greedy search needs at least two disks")
    dense = _as_probability_list(probabilities, total_pages)
    cuts = list(cut_candidates) if cut_candidates is not None else _default_cuts(dense)
    interior = sorted(c for c in cuts if 0 < c < total_pages)
    if len(interior) < num_disks - 1:
        raise ConfigurationError(
            f"only {len(interior)} candidate cuts for {num_disks - 1} boundaries"
        )
    deltas = list(deltas)

    # Even spread over the candidate list as the starting point.
    step = len(interior) / num_disks
    boundary = sorted(
        {interior[min(len(interior) - 1, int(step * (i + 1)))] for i in range(num_disks - 1)}
    )
    while len(boundary) < num_disks - 1:  # de-dup fallback for tiny grids
        extras = [c for c in interior if c not in boundary]
        boundary = sorted([*boundary, extras[0]])

    def score(bounds: Sequence[int]) -> Tuple[DiskLayout, Optional[int], float]:
        edges = [0, *bounds, total_pages]
        sizes = [b - a for a, b in zip(edges, edges[1:])]
        local_best = None
        for delta in deltas:
            layout, delay = _evaluate(sizes, delta, probabilities)
            if local_best is None or delay < local_best[2]:
                local_best = (layout, delta, delay)
        assert local_best is not None
        return local_best

    evaluated = 0
    current = score(boundary)
    evaluated += len(deltas)
    for _round in range(max_rounds):
        improved = False
        for position in range(len(boundary)):
            lo = boundary[position - 1] if position > 0 else 0
            hi = boundary[position + 1] if position + 1 < len(boundary) else total_pages
            for candidate in interior:
                if not lo < candidate < hi or candidate == boundary[position]:
                    continue
                trial_bounds = sorted(
                    [*boundary[:position], candidate, *boundary[position + 1 :]]
                )
                trial = score(trial_bounds)
                evaluated += len(deltas)
                if trial[2] < current[2]:
                    boundary = trial_bounds
                    current = trial
                    improved = True
        if not improved:
            break
    layout, delta, delay = current
    return ShapingResult(
        layout=layout,
        delta=delta,
        expected_delay=delay,
        lower_bound=sqrt_rule_lower_bound(probabilities),
        evaluated=evaluated,
    )


def search_frequencies(
    sizes: Sequence[int],
    probabilities: Mapping[int, float],
    max_frequency: int = 12,
) -> ShapingResult:
    """Fix the partition; search integer frequency vectors directly.

    Covers ratios outside the Δ-rule (the paper notes frequencies "can be
    any positive integers", e.g. 3:2).  Vectors are non-increasing with
    the slowest disk pinned to 1 (scaling all frequencies together only
    changes padding, never the delay ordering) and co-prime-reduced to
    avoid duplicates.
    """
    sizes = [int(s) for s in sizes]
    n = len(sizes)
    if n < 1:
        raise ConfigurationError("need at least one disk")
    best: Optional[Tuple[DiskLayout, float]] = None
    evaluated = 0
    ranges = [range(1, max_frequency + 1)] * (n - 1)
    for head in itertools.product(*ranges):
        vector = (*head, 1)
        if any(a < b for a, b in zip(vector, vector[1:])):
            continue
        layout = DiskLayout(sizes, vector)
        delay = multidisk_expected_delay(layout, probabilities)
        evaluated += 1
        if best is None or delay < best[1]:
            best = (layout, delay)
    assert best is not None
    layout, delay = best
    return ShapingResult(
        layout=layout,
        delta=None,
        expected_delay=delay,
        lower_bound=sqrt_rule_lower_bound(probabilities),
        evaluated=evaluated,
    )


def compare_presets(
    presets: Mapping[str, DiskLayout],
    probabilities: Mapping[int, float],
) -> Dict[str, float]:
    """Analytic expected delay of each named preset layout.

    Handy for ranking the paper's D1–D5 configurations against an
    optimiser-chosen layout under the same workload.
    """
    return {
        name: multidisk_expected_delay(layout, probabilities)
        for name, layout in presets.items()
    }
