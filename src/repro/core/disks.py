"""Disk layouts: the partitioning of pages onto broadcast "disks".

A :class:`DiskLayout` captures the first three steps of the §2.2 program
generation algorithm: pages are ordered hottest-to-coldest, partitioned
into ranges ("disks"), and each disk is given an integer relative
broadcast frequency.  Disk 0 is the fastest; the last disk is the slowest
(the paper numbers them 1..N; we use 0-based indices in code and 1-based
labels only in reports).

The paper's experiments organise the space of relative frequencies with a
single knob Δ (``delta``)::

    rel_freq(i) / rel_freq(N) = (N - i) * Δ + 1        (1-based i)

so Δ=0 is a flat broadcast and larger Δ spins the fast disks faster.
:meth:`DiskLayout.from_delta` implements that rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class DiskLayout:
    """Sizes and integer relative frequencies of the broadcast disks.

    Parameters
    ----------
    sizes:
        Number of pages on each disk, fastest first.  Pages are implicitly
        numbered ``0 .. sum(sizes)-1`` hottest-to-coldest; disk ``i`` holds
        the contiguous range starting after all faster disks.
    rel_freqs:
        Positive integer broadcast frequencies relative to one another
        (§2.2 step 3).  They must be non-increasing: a "fast" disk that
        spins slower than a later disk would contradict the
        hottest-to-coldest ordering.
    """

    sizes: Tuple[int, ...]
    rel_freqs: Tuple[int, ...]

    def __init__(self, sizes: Sequence[int], rel_freqs: Sequence[int]):
        sizes = tuple(int(s) for s in sizes)
        rel_freqs = tuple(int(f) for f in rel_freqs)
        if not sizes:
            raise ConfigurationError("a disk layout needs at least one disk")
        if len(sizes) != len(rel_freqs):
            raise ConfigurationError(
                f"{len(sizes)} disk sizes but {len(rel_freqs)} relative frequencies"
            )
        if any(s < 1 for s in sizes):
            raise ConfigurationError(f"disk sizes must be positive, got {sizes}")
        if any(f < 1 for f in rel_freqs):
            raise ConfigurationError(
                f"relative frequencies must be positive integers, got {rel_freqs}"
            )
        if any(a < b for a, b in zip(rel_freqs, rel_freqs[1:])):
            raise ConfigurationError(
                f"relative frequencies must be non-increasing "
                f"(fastest disk first), got {rel_freqs}"
            )
        object.__setattr__(self, "sizes", sizes)
        object.__setattr__(self, "rel_freqs", rel_freqs)

    # -- constructors ------------------------------------------------------
    @classmethod
    def from_delta(cls, sizes: Sequence[int], delta: int) -> "DiskLayout":
        """Build a layout using the paper's Δ-rule (§4.2).

        With N disks (1-based), ``rel_freq(i) = (N - i) * Δ + 1`` relative
        to the slowest disk.  Δ=0 yields a flat broadcast; for a 3-disk
        layout Δ=1 gives speeds 3:2:1 and Δ=3 gives 7:4:1, matching the
        paper's examples.
        """
        delta = int(delta)
        if delta < 0:
            raise ConfigurationError(f"delta must be >= 0, got {delta}")
        n = len(sizes)
        rel_freqs = [(n - i) * delta + 1 for i in range(1, n + 1)]
        return cls(sizes, rel_freqs)

    @classmethod
    def flat(cls, total_pages: int) -> "DiskLayout":
        """A single-disk (flat) layout over ``total_pages`` pages."""
        return cls((total_pages,), (1,))

    # -- derived quantities --------------------------------------------------
    @property
    def num_disks(self) -> int:
        """Number of disks (the paper's NumDisks)."""
        return len(self.sizes)

    @property
    def total_pages(self) -> int:
        """Total pages across all disks (the paper's ServerDBSize)."""
        return sum(self.sizes)

    @property
    def is_flat(self) -> bool:
        """True when every disk spins at the same speed."""
        return len(set(self.rel_freqs)) == 1

    def disk_ranges(self) -> Tuple[Tuple[int, int], ...]:
        """``(start, stop)`` physical-page range of each disk (stop exclusive)."""
        ranges = []
        start = 0
        for size in self.sizes:
            ranges.append((start, start + size))
            start += size
        return tuple(ranges)

    def disk_of_page(self, page: int) -> int:
        """0-based index of the disk holding physical ``page``."""
        if not 0 <= page < self.total_pages:
            raise ConfigurationError(
                f"page {page} outside database [0, {self.total_pages})"
            )
        start = 0
        for index, size in enumerate(self.sizes):
            start += size
            if page < start:
                return index
        raise AssertionError("unreachable: ranges cover the database")

    def pages_on_disk(self, disk: int) -> range:
        """The physical pages assigned to ``disk`` (0-based)."""
        start, stop = self.disk_ranges()[disk]
        return range(start, stop)

    def bandwidth_shares(self) -> Tuple[float, ...]:
        """Fraction of broadcast slots each disk receives (ignoring padding).

        Disk ``i`` transmits ``sizes[i] * rel_freqs[i]`` page-slots per
        period, so its share is that weight normalised over all disks.
        """
        weights = [s * f for s, f in zip(self.sizes, self.rel_freqs)]
        total = sum(weights)
        return tuple(w / total for w in weights)

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        """Iterate ``(size, rel_freq)`` pairs, fastest disk first."""
        return iter(zip(self.sizes, self.rel_freqs))

    def describe(self) -> str:
        """Human-readable one-liner, e.g. ``<500@7, 2000@4, 2500@1>``."""
        parts = [f"{s}@{f}" for s, f in self]
        return "<" + ", ".join(parts) + ">"
