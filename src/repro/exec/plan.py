"""Run plans: frozen, hashable, picklable units of experiment work.

A :class:`RunPlan` pins down everything one experiment execution needs —
the :class:`~repro.experiments.config.ExperimentConfig`, the engine, and
the collection options — with no live objects attached, so a plan can be
hashed (grid de-duplication), pickled (sent to a worker process), and
fingerprinted (matched against a checkpoint journal).  Executors consume
plans; nothing about a plan depends on *how* it will be executed.

Seeds: by default a plan runs with its config's own seed, which keeps
every existing figure reproduction bit-for-bit identical.  When a sweep
wants per-point seed independence, :func:`plan_sweep` accepts a
``sweep_seed`` and derives each plan's seed deterministically from it
and the plan index (:func:`derive_seed`), so regenerating the same grid
always re-derives the same seeds no matter which executor runs it.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Iterable, List, Tuple

from repro.errors import ConfigurationError  # noqa: F401 - re-exported
from repro.experiments.config import ExperimentConfig
from repro.experiments.engines import get_plan_engine, plan_engine_names

#: Engines an executor knows how to drive (registry view; see
#: :mod:`repro.experiments.engines` for the authoritative table).
ENGINES: Tuple[str, ...] = plan_engine_names()

#: Seed-derivation stride — the same constant
#: :meth:`repro.sim.rng.RandomStreams.fork` uses, so plan seeds and
#: client forks draw from one derivation convention.
_SEED_STRIDE = 1_000_003


def derive_seed(sweep_seed: int, index: int) -> int:
    """The per-plan seed for position ``index`` of a seeded sweep.

    Pure arithmetic on ints: the same ``(sweep_seed, index)`` pair
    always yields the same seed, on every platform and in every
    process.
    """
    return int(sweep_seed) * _SEED_STRIDE + int(index)


@dataclass(frozen=True)
class RunPlan:
    """One fully-specified, executor-agnostic unit of experiment work."""

    config: ExperimentConfig
    engine: str = "fast"
    collect_responses: bool = False
    #: Position in the sweep grid; results are reassembled in this order.
    index: int = 0

    def __post_init__(self):
        get_plan_engine(self.engine)  # rejects unknown/non-plan engines

    @property
    def seed(self) -> int:
        """The seed this plan runs with (the config's seed)."""
        return self.config.seed

    def describe(self) -> str:
        """Short human-readable identifier for progress lines."""
        return f"[{self.index}] {self.config.describe()} ({self.engine})"

    def fingerprint(self) -> str:
        """Stable identity of the *work*, independent of grid position.

        Two plans fingerprint equal iff they would produce the same
        result: same config (every field), same engine, same collection
        options.  The index is deliberately excluded so a checkpoint
        journal survives grid reordering.
        """
        from repro.obs.manifest import config_hash

        payload = json.dumps(
            {
                "config": config_hash(self.config),
                "engine": self.engine,
                "collect_responses": self.collect_responses,
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def plan_for(
    config: ExperimentConfig,
    *,
    engine: str = "fast",
    collect_responses: bool = False,
    index: int = 0,
) -> RunPlan:
    """The plan that reproduces one ``run_experiment`` call."""
    return RunPlan(
        config=config,
        engine=engine,
        collect_responses=collect_responses,
        index=index,
    )


def plan_sweep(
    configs: Iterable[ExperimentConfig],
    *,
    engine: str = "fast",
    collect_responses: bool = False,
    sweep_seed: int = None,
) -> List[RunPlan]:
    """Plans for a whole grid, indexed in iteration order.

    With ``sweep_seed`` given, each config's seed is replaced by
    :func:`derive_seed(sweep_seed, index) <derive_seed>`; left ``None``
    (the default) every config keeps its own seed, which is what the
    paper reproductions want (one shared seed across the grid).
    """
    plans: List[RunPlan] = []
    for index, config in enumerate(configs):
        if sweep_seed is not None:
            config = config.with_(seed=derive_seed(sweep_seed, index))
        plans.append(
            RunPlan(
                config=config,
                engine=engine,
                collect_responses=collect_responses,
                index=index,
            )
        )
    return plans
