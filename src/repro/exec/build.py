"""Structural build caching: reuse layouts and schedules across plans.

Constructing the broadcast program is the most expensive *deterministic*
part of a design point: the multi-disk chunking of 5,000 pages plus the
schedule's per-page occurrence index.  Yet entire sweep families (every
noise level of Figures 6-9, every policy of Figures 13-15) share one
layout/schedule and differ only in workload or cache parameters.

:class:`BuildCache` memoises ``(layout, schedule)`` keyed on the
config's *structural key* — exactly the fields that determine the
broadcast program (disk sizes, Δ, explicit relative frequencies) and
nothing else.  Both objects are immutable after construction (the
schedule's occurrence arrays are built once in ``__init__``), so
sharing them across runs cannot perturb results; the equivalence is
asserted by ``tests/test_exec_plan.py``.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Tuple

from repro.core.disks import DiskLayout
from repro.core.schedule import BroadcastSchedule
from repro.experiments.config import ExperimentConfig


def structural_key(config: ExperimentConfig) -> Tuple:
    """The config fields that determine the layout and schedule."""
    return (config.disk_sizes, config.delta, config.rel_freqs)


def structural_hash(config: ExperimentConfig) -> str:
    """SHA-256 of the structural key — a stable cross-run identity.

    Two configs share a structural hash iff they broadcast the same
    program, regardless of client-side parameters (cache, noise, seed).
    """
    payload = json.dumps(structural_key(config), sort_keys=True, default=list)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class BuildCache:
    """Memoised layout/schedule construction for one execution context.

    Each executor (and each worker process) owns its own cache; entries
    are never shipped across process boundaries — workers rebuild on
    first use and reuse thereafter.
    """

    def __init__(self):
        self._built: Dict[Tuple, Tuple[DiskLayout, BroadcastSchedule]] = {}
        #: Cache statistics, for the curious and for tests.
        self.hits = 0
        self.misses = 0

    def layout_and_schedule(
        self, config: ExperimentConfig
    ) -> Tuple[DiskLayout, BroadcastSchedule]:
        """The (possibly shared) layout and schedule for ``config``."""
        key = structural_key(config)
        entry = self._built.get(key)
        if entry is None:
            layout = config.build_layout()
            entry = (layout, config.build_schedule(layout))
            self._built[key] = entry
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def __len__(self) -> int:
        return len(self._built)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<BuildCache entries={len(self._built)} "
            f"hits={self.hits} misses={self.misses}>"
        )
