"""Structural build caching: reuse layouts and schedules across plans.

Constructing the broadcast program is the most expensive *deterministic*
part of a design point: the multi-disk chunking of 5,000 pages plus the
schedule's per-page occurrence index.  Yet entire sweep families (every
noise level of Figures 6-9, every policy of Figures 13-15) share one
layout/schedule and differ only in workload or cache parameters.

:class:`BuildCache` memoises ``(layout, schedule)`` keyed on the
config's *structural key* — exactly the fields that determine the
broadcast program (disk sizes, Δ, explicit relative frequencies) and
nothing else.  Both objects are immutable after construction (the
schedule's occurrence arrays are built once in ``__init__``), so
sharing them across runs cannot perturb results; the equivalence is
asserted by ``tests/test_exec_plan.py``.

Because the schedule object itself is shared, its lazily-built timing
structures — the fixed-gap entries, wait tables, and non-empty-slot
index of ``docs/PERFORMANCE.md`` — are built once per broadcast
structure and reused by every sweep point that shares it.
:meth:`BuildCache.timing_stats` exposes their occupancy so tests (and
the curious) can assert the reuse actually happens.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Tuple

from repro.core.disks import DiskLayout
from repro.core.schedule import BroadcastSchedule
from repro.experiments.config import ExperimentConfig


def structural_key(config: ExperimentConfig) -> Tuple:
    """The config fields that determine the layout and schedule.

    Single-channel keys are unchanged from 1.1.  A multi-channel
    program additionally depends on the channel count and on the
    server-side probability estimate steering the conflict-aware
    assignment (access_range/region_size/theta) plus the retune cost in
    its objective, so those join the key only when ``channels > 1``.
    """
    key = (config.disk_sizes, config.delta, config.rel_freqs)
    channels = getattr(config, "channels", 1)
    if channels > 1:
        key = key + (
            channels,
            config.retune_cost,
            config.access_range,
            config.region_size,
            config.theta,
        )
    return key


def structural_hash(config: ExperimentConfig) -> str:
    """SHA-256 of the structural key — a stable cross-run identity.

    Two configs share a structural hash iff they broadcast the same
    program, regardless of client-side parameters (cache, noise, seed).
    """
    payload = json.dumps(structural_key(config), sort_keys=True, default=list)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class BuildCache:
    """Memoised layout/schedule construction for one execution context.

    Each executor (and each worker process) owns its own cache; entries
    are never shipped across process boundaries — workers rebuild on
    first use and reuse thereafter.
    """

    def __init__(self):
        self._built: Dict[Tuple, Tuple[DiskLayout, BroadcastSchedule]] = {}
        #: Cache statistics, for the curious and for tests.
        self.hits = 0
        self.misses = 0

    def layout_and_schedule(
        self, config: ExperimentConfig
    ) -> Tuple[DiskLayout, BroadcastSchedule]:
        """The (possibly shared) layout and schedule for ``config``."""
        key = structural_key(config)
        entry = self._built.get(key)
        if entry is None:
            layout = config.build_layout()
            entry = (layout, config.build_schedule(layout))
            self._built[key] = entry
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def timing_stats(self) -> Dict[str, object]:
        """Timing-structure occupancy summed over the cached schedules.

        The per-schedule breakdown comes from
        :meth:`~repro.core.schedule.BroadcastSchedule.timing_stats`;
        summing it here makes "one set of tables per broadcast
        structure, not per sweep point" directly assertable.  The
        ``queries`` sub-dict sums the per-tier ``next_arrival`` dispatch
        counts (all zeros unless the schedules had
        ``enable_timing_counters()`` switched on by a profiled run).
        """
        totals: Dict[str, object] = {
            "schedules": len(self._built),
            "fixed_gap_entries": 0,
            "wait_tables": 0,
            "wait_table_bytes": 0,
            "wait_tables_declined": 0,
            "nonempty_indexes_built": 0,
        }
        queries = {"closed_form": 0, "wait_table": 0, "bisect": 0}
        for _layout, schedule in self._built.values():
            stats = schedule.timing_stats()
            totals["fixed_gap_entries"] += stats["fixed_gap_entries"]
            totals["wait_tables"] += stats["wait_tables"]
            totals["wait_table_bytes"] += stats["wait_table_bytes"]
            totals["wait_tables_declined"] += stats["wait_tables_declined"]
            totals["nonempty_indexes_built"] += stats["nonempty_index_built"]
            for tier, count in stats["queries"].items():
                queries[tier] += count
        totals["queries"] = queries
        return totals

    def __len__(self) -> int:
        return len(self._built)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<BuildCache entries={len(self._built)} "
            f"hits={self.hits} misses={self.misses}>"
        )
