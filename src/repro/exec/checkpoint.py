"""Sweep checkpoints: resume an interrupted sweep without re-running.

A :class:`SweepCheckpoint` is an append-only JSONL journal.  Each line
records one finished plan: its :meth:`~repro.exec.plan.RunPlan.fingerprint`
(the identity of the *work* — config hash + engine + collection
options, grid position excluded) and the exact result state
(:func:`repro.exec.run.result_state`, which carries the
``RunningStats`` internals so the resumed result is bit-for-bit the
original).  Executors consult the journal before running a plan and
append after finishing one, so killing a sweep at any point loses at
most the in-flight plans; re-running the same command skips everything
already journalled.

Because entries are keyed by fingerprint rather than index, the journal
survives grid reordering and partial overlap: a resumed sweep with
extra or shuffled design points reuses exactly the points it has seen
before.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional

from repro.exec.plan import RunPlan
from repro.exec.run import ExperimentResult, result_from_state, result_state

CHECKPOINT_SCHEMA = "repro.exec.checkpoint/1"


class SweepCheckpoint:
    """Append-only JSONL journal of finished plans, keyed by fingerprint."""

    def __init__(self, path: str):
        self.path = path
        self._states: Dict[str, Dict] = {}
        #: Journal lines replayed from disk at open (before this run).
        self.resumed = 0
        if os.path.exists(path):
            self._replay()

    def _replay(self) -> None:
        with open(self.path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                entry = json.loads(line)
                # Later entries win, matching append order.
                self._states[entry["fingerprint"]] = entry["state"]
        self.resumed = len(self._states)

    def lookup(self, plan: RunPlan) -> Optional[ExperimentResult]:
        """The journalled result for ``plan``, or ``None`` if unseen."""
        state = self._states.get(plan.fingerprint())
        if state is None:
            return None
        return result_from_state(plan.config, state)

    def record(self, plan: RunPlan, result: ExperimentResult) -> None:
        """Append one finished plan to the journal and remember it."""
        fingerprint = plan.fingerprint()
        state = result_state(result)
        entry = {
            "schema": CHECKPOINT_SCHEMA,
            "fingerprint": fingerprint,
            "label": plan.config.describe(),
            "state": state,
        }
        with open(self.path, "a") as handle:
            handle.write(json.dumps(entry, sort_keys=True))
            handle.write("\n")
        self._states[fingerprint] = state

    def __len__(self) -> int:
        return len(self._states)

    def __contains__(self, plan: RunPlan) -> bool:
        return plan.fingerprint() in self._states

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SweepCheckpoint path={self.path!r} "
            f"entries={len(self._states)} resumed={self.resumed}>"
        )
