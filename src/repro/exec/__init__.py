"""The execution layer: plans, executors, build caching, resumability.

The experiments stack used to run sweeps strictly serially, rebuilding
the layout/schedule/mapping at every design point.  This package splits
*what to run* from *how to run it*:

* :class:`~repro.exec.plan.RunPlan` — a frozen, hashable, picklable
  unit of work (config + engine + collection options) with
  deterministic per-plan seed derivation;
* :class:`~repro.exec.executor.SerialExecutor` and
  :class:`~repro.exec.executor.ParallelExecutor` — interchangeable
  executors whose results are byte-identical regardless of worker
  count or completion order (results are reassembled in plan order);
* :class:`~repro.exec.build.BuildCache` — layout/schedule reuse across
  plans sharing a broadcast structure;
* :class:`~repro.exec.checkpoint.SweepCheckpoint` — JSONL journal that
  lets an interrupted sweep resume without re-running finished plans.

See ``docs/ARCHITECTURE.md`` for the layering and the determinism
contract.
"""

from repro.exec.build import BuildCache, structural_hash, structural_key
from repro.exec.checkpoint import SweepCheckpoint
from repro.exec.executor import (
    Executor,
    ParallelExecutor,
    SerialExecutor,
    resolve_executor,
    usable_cores,
)
from repro.exec.plan import RunPlan, derive_seed, plan_for, plan_sweep
from repro.exec.run import execute_plan

__all__ = [
    "BuildCache",
    "Executor",
    "ParallelExecutor",
    "RunPlan",
    "SerialExecutor",
    "SweepCheckpoint",
    "derive_seed",
    "execute_plan",
    "plan_for",
    "plan_sweep",
    "resolve_executor",
    "structural_hash",
    "structural_key",
    "usable_cores",
]
