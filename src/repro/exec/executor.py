"""Executors: strategies for running a list of plans.

Both executors honour one contract, asserted by
``tests/test_exec_parallel.py``: the returned list matches the plan
list position-for-position, and every per-plan measurement (means,
samples, counters — everything except ``wall_seconds``) is identical
no matter which executor ran it, how many workers it used, or in what
order the workers finished.  Parallelism is therefore a pure wall-clock
optimisation, never an answer-changing one.

How :class:`ParallelExecutor` keeps the contract:

* each plan is self-contained (frozen config, no live objects), so
  shipping it to a worker process cannot entangle runs;
* results are reassembled by plan position, not completion order;
* the ``progress`` callback fires in plan order — a position is
  reported only once every earlier position has completed — so
  observers see exactly the serial sequence;
* when an *enabled* tracer is attached, the pool is bypassed and plans
  run serially in-process: trace records must land in one sink in
  simulation order, which cannot be preserved across process
  boundaries.  (A disabled tracer costs nothing and parallelises
  fine.)

Both executors thread a :class:`~repro.exec.build.BuildCache` through
their runs — the serial executor one per ``run()`` call, the parallel
executor one per worker process — so sweep points sharing a broadcast
structure skip schedule construction.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Callable, List, Optional, Protocol, Sequence

from repro.errors import ConfigurationError
from repro.exec.build import BuildCache
from repro.exec.checkpoint import SweepCheckpoint
from repro.exec.plan import RunPlan
from repro.exec.run import ExperimentResult, execute_plan

#: ``progress(completed, total, result)``, fired in plan order.
ProgressCallback = Callable[[int, int, ExperimentResult], None]


def usable_cores() -> int:
    """CPU cores this process may actually run on.

    Respects CPU affinity masks (containers, ``taskset``) where the
    platform exposes them; falls back to :func:`os.cpu_count`.  Worker
    processes beyond this count time-share cores and — as
    ``BENCH_sweep.json`` recorded before the clamp — turn the pool into
    a pessimization, so :class:`ParallelExecutor` never exceeds it.
    """
    affinity = getattr(os, "sched_getaffinity", None)
    if affinity is not None:
        try:
            return max(1, len(affinity(0)))
        except OSError:  # pragma: no cover - platform quirk
            pass
    return max(1, os.cpu_count() or 1)


class Executor(Protocol):
    """Anything that can turn a plan list into a result list."""

    def run(
        self,
        plans: Sequence[RunPlan],
        *,
        tracer=None,
        progress: Optional[ProgressCallback] = None,
        checkpoint: Optional[SweepCheckpoint] = None,
        profile=None,
        monitors=None,
    ) -> List[ExperimentResult]:
        ...  # pragma: no cover - protocol signature


def _run_in_order(
    plans: Sequence[RunPlan],
    tracer,
    progress: Optional[ProgressCallback],
    checkpoint: Optional[SweepCheckpoint],
    profile=None,
    monitors=None,
    builds: Optional[BuildCache] = None,
) -> List[ExperimentResult]:
    """The reference execution: one plan after another, in order."""
    plans = list(plans)
    if builds is None:
        builds = BuildCache()
    results: List[ExperimentResult] = []
    for position, plan in enumerate(plans):
        result = None if checkpoint is None else checkpoint.lookup(plan)
        if result is None:
            result = execute_plan(plan, tracer=tracer, builds=builds,
                                  profile=profile, monitors=monitors)
            if checkpoint is not None:
                checkpoint.record(plan, result)
        results.append(result)
        if progress is not None:
            progress(position + 1, len(plans), result)
    return results


class SerialExecutor:
    """Run plans one at a time, in plan order, in this process.

    After a :meth:`run` the executor keeps its
    :class:`~repro.exec.build.BuildCache` on :attr:`last_builds`, so
    callers (the sweep manifest) can report schedule-reuse and
    timing-tier statistics for the runs that just happened.
    """

    def __init__(self):
        #: The build cache of the most recent :meth:`run`; None before.
        self.last_builds: Optional[BuildCache] = None

    def run(
        self,
        plans: Sequence[RunPlan],
        *,
        tracer=None,
        progress: Optional[ProgressCallback] = None,
        checkpoint: Optional[SweepCheckpoint] = None,
        profile=None,
        monitors=None,
    ) -> List[ExperimentResult]:
        builds = BuildCache()
        self.last_builds = builds
        return _run_in_order(plans, tracer, progress, checkpoint,
                             profile, monitors, builds)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SerialExecutor()"


# Per-worker build cache, created lazily on the worker's first plan.
# Module-level so :func:`_execute_in_worker` stays picklable by name.
_WORKER_BUILDS: Optional[BuildCache] = None


def _execute_in_worker(plan: RunPlan) -> ExperimentResult:
    """Worker-side entry point: execute one plan with the worker's cache."""
    global _WORKER_BUILDS
    if _WORKER_BUILDS is None:
        _WORKER_BUILDS = BuildCache()
    return execute_plan(plan, builds=_WORKER_BUILDS)


class ParallelExecutor:
    """Run plans on a :class:`~concurrent.futures.ProcessPoolExecutor`.

    ``jobs`` is the *requested* worker-process count; at ``run()`` time
    it is clamped to :func:`usable_cores` so oversubscription never
    turns the pool into a pessimization.  ``jobs=1``, a host with a
    single usable core, and any run with an enabled tracer attached all
    degrade to the serial in-process path, which is byte-identical
    anyway and skips the pool overhead.
    """

    def __init__(self, jobs: int = 2):
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        self.jobs = int(jobs)
        #: The build cache of the most recent serial-degraded ``run()``;
        #: None before any run and after a genuinely pooled run, whose
        #: caches live (and die) in the worker processes.
        self.last_builds: Optional[BuildCache] = None

    def effective_jobs(self) -> int:
        """The worker count a run will actually use: jobs ∧ usable cores."""
        return min(self.jobs, usable_cores())

    def run(
        self,
        plans: Sequence[RunPlan],
        *,
        tracer=None,
        progress: Optional[ProgressCallback] = None,
        checkpoint: Optional[SweepCheckpoint] = None,
        profile=None,
        monitors=None,
    ) -> List[ExperimentResult]:
        plans = list(plans)
        tracing = tracer is not None and tracer.enabled
        profiling = profile is not None and profile.enabled
        monitoring = monitors is not None and monitors.enabled
        jobs = self.effective_jobs()
        if tracing or profiling or monitoring or jobs == 1 or len(plans) <= 1:
            # Enabled tracing needs one sink in simulation order, and an
            # enabled profiler/monitor suite accumulates in-process
            # state a worker could not ship back; tiny, single-worker,
            # or single-core runs gain nothing from a pool — on a 1-core
            # host the pool *costs* wall clock.
            builds = BuildCache()
            self.last_builds = builds
            return _run_in_order(plans, tracer, progress, checkpoint,
                                 profile, monitors, builds)
        self.last_builds = None

        results: List[Optional[ExperimentResult]] = [None] * len(plans)
        pending: List[int] = []
        for position, plan in enumerate(plans):
            cached = None if checkpoint is None else checkpoint.lookup(plan)
            if cached is None:
                pending.append(position)
            else:
                results[position] = cached

        reported = 0

        def flush_progress() -> int:
            """Fire ``progress`` for the completed prefix, in plan order."""
            nonlocal reported
            while reported < len(plans) and results[reported] is not None:
                if progress is not None:
                    progress(reported + 1, len(plans), results[reported])
                reported += 1
            return reported

        if not pending:
            flush_progress()
            return list(results)  # type: ignore[arg-type]

        workers = min(jobs, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(_execute_in_worker, plans[position]): position
                for position in pending
            }
            outstanding = set(futures)
            while outstanding:
                done, outstanding = wait(
                    outstanding, return_when=FIRST_COMPLETED
                )
                for future in done:
                    position = futures[future]
                    result = future.result()  # re-raises worker errors
                    results[position] = result
                    if checkpoint is not None:
                        checkpoint.record(plans[position], result)
                flush_progress()

        flush_progress()
        return list(results)  # type: ignore[arg-type]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ParallelExecutor(jobs={self.jobs})"


def resolve_executor(jobs: int = 1) -> Executor:
    """The executor a ``jobs`` count asks for: serial at 1, pooled above."""
    if jobs is None or jobs <= 1:
        return SerialExecutor()
    return ParallelExecutor(jobs=jobs)
