"""Plan execution: from a :class:`~repro.exec.plan.RunPlan` to a result.

This module owns the single code path that turns a plan into an
:class:`ExperimentResult` — the same path for every executor, so a
result depends only on the plan, never on who ran it or alongside what.

Determinism contract (asserted by ``tests/test_exec_parallel.py``):
``execute_plan(plan)`` is a pure function of the plan up to the
``wall_seconds`` field.  Layout/schedule reuse through a
:class:`~repro.exec.build.BuildCache` changes construction cost only;
random streams are derived inside the call from the plan's config.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cache.base import TracedCache
from repro.errors import ConfigurationError
from repro.exec.build import BuildCache
from repro.exec.plan import RunPlan
from repro.experiments.config import ExperimentConfig
from repro.experiments.engines import get_plan_engine
from repro.obs.clock import perf_counter
from repro.obs.monitor import MonitorContext
from repro.obs.trace import Tracer
from repro.sim.stats import RunningStats
from repro.workload.trace import generate_trace

#: Extra requests drawn beyond the measured count so the warm-up phase
#: (cache fill) never exhausts the trace.  The cache needs at least
#: ``cache_size`` misses to fill; skew makes warm-up take longer, so the
#: allowance is generous and checked after the run.
_WARMUP_ALLOWANCE_FACTOR = 6


@dataclass
class ExperimentResult:
    """Everything measured in one experiment run."""

    config: ExperimentConfig
    mean_response_time: float
    response_stats: RunningStats
    hit_rate: float
    access_locations: Dict[str, float]
    measured_requests: int
    warmup_requests: int
    schedule_period: int
    schedule_utilisation: float
    wall_seconds: float
    samples: Optional[List[float]] = None
    #: The run manifest dict, present when ``run_experiment`` was asked
    #: to write one (``manifest=...``).
    manifest: Optional[Dict] = None
    #: Measured-phase channel switches (multi-channel runs; 0 otherwise).
    retunes: int = 0
    #: Per-channel slot utilisation for multi-channel programs; ``None``
    #: on the single-channel path so legacy result dicts are unchanged.
    channel_utilisation: Optional[List[float]] = None

    def summary(self) -> str:
        """One-line human-readable result."""
        return (
            f"{self.config.describe()}: "
            f"response={self.mean_response_time:.1f} bu, "
            f"hit_rate={self.hit_rate:.1%}, "
            f"period={self.schedule_period}"
        )


def _warmup_trace_allowance(config: ExperimentConfig) -> int:
    """Requests to draw beyond the measured phase for cache warm-up."""
    if config.warmup_requests is not None:
        return config.warmup_requests
    if not config.has_cache:
        return 8  # a couple of requests fills the 1-page cache
    fill_allowance = max(2_000, _WARMUP_ALLOWANCE_FACTOR * config.cache_size)
    return fill_allowance + config.extra_warmup


def execute_plan(
    plan: RunPlan,
    *,
    tracer=None,
    builds: Optional[BuildCache] = None,
    profile=None,
    monitors=None,
) -> ExperimentResult:
    """Run one plan and return its measurements.

    ``tracer`` attaches a :class:`repro.obs.trace.Tracer` to the engine
    (and, for the process engine, the kernel and channel) and wraps the
    cache in a :class:`~repro.cache.base.TracedCache`.  ``builds``
    supplies a :class:`~repro.exec.build.BuildCache` so plans sharing a
    broadcast structure reuse the constructed layout and schedule.

    ``profile`` attaches a :class:`repro.obs.profile.Profiler`: build /
    run phases are timed, the schedule's timing-tier counters are
    switched on, and the per-tier ``next_arrival`` query delta of this
    run is folded in.  ``monitors`` attaches a
    :class:`repro.obs.monitor.MonitorSuite`, fed from the run's trace
    stream — through the caller's enabled tracer when there is one,
    otherwise through a private internal tracer (so monitoring needs no
    sink plumbing).  In strict mode the suite raises
    :class:`~repro.errors.MonitorError` after the run.  Neither hook
    changes measured results: profiled fast-engine runs take the
    general traced loop, which the equivalence tests hold identical to
    the allocation-free hot path.
    """
    config = plan.config
    started = perf_counter()
    profiling = profile is not None and profile.enabled
    monitoring = monitors is not None and monitors.enabled
    if profiling:
        profile.start_phase("build")
    if builds is None:
        layout = config.build_layout()
        schedule = config.build_schedule(layout)
    else:
        layout, schedule = builds.layout_and_schedule(config)
    streams = config.build_streams()
    mapping = config.build_mapping(layout, streams)
    distribution = config.build_distribution()
    # Imported lazily: ``repro.batch`` itself imports this module.
    from repro.batch.engine import batchable_policy_name

    if plan.engine == "batch" and batchable_policy_name(config.policy):
        # The columnar engine carries its own array-state policy; a
        # scalar cache built here would never see a request.  Pass
        # ``None`` and let ``_run_plan_batch`` rebuild one only if it
        # actually falls back to the scalar path.
        cache = None
    else:
        cache = config.build_policy(schedule, mapping, distribution, layout)

    if profiling:
        schedule.enable_timing_counters()
        queries_before = schedule.timing_queries()

    effective_tracer = tracer
    attached_to_caller = False
    if monitoring:
        monitors.begin_run(MonitorContext(
            label=config.describe(),
            schedule=schedule,
            cache_capacity=config.cache_size if config.has_cache else None,
        ))
        if tracer is not None and tracer.enabled:
            tracer.add_sink(monitors)
            attached_to_caller = True
        else:
            effective_tracer = Tracer(monitors)

    tracing = effective_tracer is not None and effective_tracer.enabled
    if tracing and cache is not None:
        cache = TracedCache(cache, effective_tracer)

    allowance = _warmup_trace_allowance(config)
    total_requests = config.num_requests + allowance
    if config.drift_rotations:
        # Drifting workload: the trace rotates its hotspot over the run
        # while the policy oracle keeps the frozen t=0 snapshot (§3's
        # stale-profile scenario, as in ``figures.drift_study``).
        drift = config.build_drift(total_requests)
        trace = drift.generate_trace(
            total_requests, streams.stream("requests")
        )
    else:
        trace = generate_trace(
            distribution, total_requests, streams.stream("requests")
        )
    if profiling:
        profile.stop_phase("build")
        profile.start_phase("run")

    try:
        outcome = get_plan_engine(plan.engine).run_plan(
            plan,
            config=config,
            schedule=schedule,
            mapping=mapping,
            layout=layout,
            cache=cache,
            trace=trace,
            tracer=effective_tracer,
            profile=profile,
            channels=getattr(config, "channels", 1),
            retune_cost=getattr(config, "retune_cost", 1.0),
        )
    finally:
        if attached_to_caller:
            tracer.remove_sink(monitors)

    if profiling:
        profile.stop_phase("run")
        queries_after = schedule.timing_queries()
        profile.add_tier_counts({
            tier: queries_after[tier] - queries_before[tier]
            for tier in queries_after
        })
        profile.count("plans", 1)
        profile.count("requests.measured", outcome.measured_requests)
        profile.count("requests.warmup", outcome.warmup_requests)
    if monitoring:
        monitors.end_run()  # raises MonitorError in strict mode

    if outcome.measured_requests == 0:
        raise ConfigurationError(
            f"warm-up consumed the whole trace for {config.describe()}; "
            "increase num_requests or lower cache_size"
        )

    # A multi-channel program reports its aggregate utilisation over
    # all channel slots plus the per-channel breakdown; the
    # single-channel expression is untouched.
    channel_utilisation = None
    if hasattr(schedule, "channel_utilisation"):
        utilisation = schedule.utilisation
        channel_utilisation = list(schedule.channel_utilisation())
    else:
        utilisation = 1.0 - schedule.empty_slots / schedule.period

    return ExperimentResult(
        config=config,
        mean_response_time=outcome.response.mean,
        response_stats=outcome.response,
        hit_rate=outcome.counters.hit_rate,
        access_locations=outcome.counters.access_locations(layout.num_disks),
        measured_requests=outcome.measured_requests,
        warmup_requests=outcome.warmup_requests,
        schedule_period=schedule.period,
        schedule_utilisation=utilisation,
        wall_seconds=perf_counter() - started,
        samples=outcome.samples,
        retunes=outcome.retunes,
        channel_utilisation=channel_utilisation,
    )


# ---------------------------------------------------------------------------
# Exact result (de)serialisation — the checkpoint journal's substrate.
# ---------------------------------------------------------------------------

def result_state(result: ExperimentResult) -> Dict:
    """Everything in a result except its config, exactly.

    Unlike the manifest (a human-facing summary), this block carries the
    :class:`RunningStats` internals (count, mean, M2, extrema) and the
    raw samples, so :func:`result_from_state` rebuilds the result
    bit-for-bit — JSON round-trips Python floats exactly.
    """
    stats = result.response_stats
    return {
        "response_state": {
            "count": stats.count,
            "mean": stats._mean,
            "m2": stats._m2,
            "min": None if math.isinf(stats.minimum) else stats.minimum,
            "max": None if math.isinf(stats.maximum) else stats.maximum,
        },
        "mean_response_time": result.mean_response_time,
        "hit_rate": result.hit_rate,
        "access_locations": dict(result.access_locations),
        "measured_requests": result.measured_requests,
        "warmup_requests": result.warmup_requests,
        "schedule_period": result.schedule_period,
        "schedule_utilisation": result.schedule_utilisation,
        "wall_seconds": result.wall_seconds,
        "samples": result.samples,
        "retunes": result.retunes,
        "channel_utilisation": result.channel_utilisation,
    }


def result_from_state(config: ExperimentConfig, state: Dict) -> ExperimentResult:
    """Rebuild the exact :class:`ExperimentResult` a state block encodes."""
    block = state["response_state"]
    stats = RunningStats()
    stats.count = int(block["count"])
    stats._mean = float(block["mean"])
    stats._m2 = float(block["m2"])
    stats.minimum = math.inf if block["min"] is None else float(block["min"])
    stats.maximum = -math.inf if block["max"] is None else float(block["max"])
    samples = state.get("samples")
    return ExperimentResult(
        config=config,
        mean_response_time=float(state["mean_response_time"]),
        response_stats=stats,
        hit_rate=float(state["hit_rate"]),
        access_locations=dict(state["access_locations"]),
        measured_requests=int(state["measured_requests"]),
        warmup_requests=int(state["warmup_requests"]),
        schedule_period=int(state["schedule_period"]),
        schedule_utilisation=float(state["schedule_utilisation"]),
        wall_seconds=float(state["wall_seconds"]),
        samples=None if samples is None else [float(s) for s in samples],
        retunes=int(state.get("retunes", 0)),
        channel_utilisation=(
            None if state.get("channel_utilisation") is None
            else [float(u) for u in state["channel_utilisation"]]
        ),
    )
