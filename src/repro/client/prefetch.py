"""Opportunistic prefetching from the broadcast (§7 future work).

The paper closes by sketching prefetching: "The client cache manager
would use the broadcast as a way to opportunistically increase the
temperature of its cache."  The heuristic the authors subsequently
published (the *PT* rule) values a page by

    pt(page) = probability(page) x time-until-next-broadcast(page)

and, as each page goes by on the broadcast, swaps it into the cache iff
its value exceeds the lowest-valued resident page.  Intuitively, a page
worth caching is one that is both likely to be needed and about to become
expensive to obtain.

Two variants are provided:

* ``steady`` (default) — values are the steady-state expectation
  ``probability x inter-arrival/2``; static per experiment, so the swap
  test is O(log cache) per passing page and full-scale runs are cheap.
* ``dynamic`` — values are recomputed with the live clock at every slot
  (the exact PT rule); O(cache) per slot, intended for small scenarios.

Unlike the demand-driven policies, a PT cache changes on *every* slot,
not only on misses, so the engine steps slot-by-slot through each
interval the client is thinking or waiting.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Callable, Dict, Optional

from repro.cache.base import CacheCounters
from repro.core.disks import DiskLayout
from repro.core.schedule import BroadcastSchedule
from repro.errors import ConfigurationError
from repro.experiments.engine import EngineOutcome
from repro.sim.stats import RunningStats
from repro.workload.mapping import LogicalPhysicalMapping
from repro.workload.trace import RequestTrace


def pt_value(
    probability: float,
    schedule: BroadcastSchedule,
    physical_page: int,
    now: float,
) -> float:
    """The exact PT value: probability x time until the next broadcast."""
    return probability * (schedule.next_arrival(physical_page, now) - now)


class PrefetchEngine:
    """Slot-stepping simulation of a PT-prefetching client."""

    def __init__(
        self,
        schedule: BroadcastSchedule,
        mapping: LogicalPhysicalMapping,
        layout: DiskLayout,
        probability: Callable[[int], float],
        cache_capacity: int,
        think_time: float,
        variant: str = "steady",
    ):
        if variant not in ("steady", "dynamic"):
            raise ConfigurationError(
                f"variant must be 'steady' or 'dynamic', got {variant!r}"
            )
        if cache_capacity < 1:
            raise ConfigurationError(
                f"cache capacity must be >= 1, got {cache_capacity}"
            )
        self.schedule = schedule
        self.mapping = mapping
        self.layout = layout
        self.probability = probability
        self.capacity = cache_capacity
        self.think_time = think_time
        self.variant = variant

        # Steady-state value of each logical page: p x mean residual life
        # of its broadcast (half the fixed inter-arrival gap).
        self._steady_value: Dict[int, float] = {}
        # Resident set: logical page -> steady value (for the lazy heap).
        self._resident: Dict[int, float] = {}
        self._heap: list[tuple[float, int, int]] = []
        self._stamp = itertools.count()

    # -- cache mechanics --------------------------------------------------
    def _steady(self, logical: int) -> float:
        value = self._steady_value.get(logical)
        if value is None:
            p = self.probability(logical)
            if p <= 0.0:
                value = 0.0
            else:
                physical = self.mapping.to_physical(logical)
                gaps = self.schedule.gaps(physical)
                value = p * float(gaps[0]) / 2.0
            self._steady_value[logical] = value
        return value

    def _dynamic(self, logical: int, now: float) -> float:
        p = self.probability(logical)
        if p <= 0.0:
            return 0.0
        physical = self.mapping.to_physical(logical)
        return pt_value(p, self.schedule, physical, now)

    def _consider(self, logical: int, now: float) -> None:
        """Apply the PT swap rule to a page passing on the broadcast."""
        if logical in self._resident:
            return
        if len(self._resident) < self.capacity:
            if self._steady(logical) > 0.0 or len(self._resident) == 0:
                self._insert(logical)
            return
        if self.variant == "steady":
            value = self._steady(logical)
            victim = self._peek_min()
            if self._resident[victim] < value:
                self._evict(victim)
                self._insert(logical)
        else:
            value = self._dynamic(logical, now)
            victim = min(
                self._resident, key=lambda page: self._dynamic(page, now)
            )
            if self._dynamic(victim, now) < value:
                del self._resident[victim]
                self._resident[logical] = self._steady(logical)

    def _insert(self, logical: int) -> None:
        value = self._steady(logical)
        self._resident[logical] = value
        heapq.heappush(self._heap, (value, next(self._stamp), logical))

    def _peek_min(self) -> int:
        while True:
            value, _stamp, page = self._heap[0]
            if self._resident.get(page) == value:
                return page
            heapq.heappop(self._heap)

    def _evict(self, page: int) -> None:
        heapq.heappop(self._heap)
        del self._resident[page]

    # -- simulation loop ----------------------------------------------------
    def run_trace(
        self,
        trace: RequestTrace,
        warmup_requests: int = 0,
        collect_responses: bool = False,
    ) -> EngineOutcome:
        """Run the trace with continuous snooping between requests."""
        schedule = self.schedule
        mapping = self.mapping
        response = RunningStats()
        counters = CacheCounters()
        samples: Optional[list] = [] if collect_responses else None

        now = 0.0
        for index in range(len(trace)):
            # Think, snooping every completion that goes by.
            now = self._snoop_until(now, now + self.think_time)
            measuring = index >= warmup_requests
            page = trace[index]

            if page in self._resident:
                if measuring:
                    response.add(0.0)
                    counters.record_hit()
                    if samples is not None:
                        samples.append(0.0)
                continue

            physical = mapping.to_physical(page)
            arrival = schedule.next_arrival(physical, now)
            # Snoop everything broadcast while waiting (the wanted page's
            # own arrival is the last completion in the interval and is
            # itself subject to the swap rule).
            self._snoop_until(now, arrival)
            wait = arrival - now
            now = arrival
            if measuring:
                response.add(wait)
                counters.record_miss(self.layout.disk_of_page(physical))
                if samples is not None:
                    samples.append(wait)

        return EngineOutcome(
            response=response,
            counters=counters,
            measured_requests=response.count,
            warmup_requests=min(warmup_requests, len(trace)),
            final_time=now,
            samples=samples,
        )

    def _snoop_until(self, start: float, stop: float) -> float:
        """Process every completion in ``(start, stop]``; returns ``stop``."""
        to_logical = self.mapping.to_logical
        first_slot = int(math.floor(start))
        last_slot = int(math.ceil(stop)) - 1
        period = self.schedule.period
        slots = self.schedule.slots
        for slot in range(first_slot, last_slot + 1):
            completion = slot + 1.0
            if completion <= start or completion > stop:
                continue
            physical = slots[slot % period]
            if physical < 0:  # padding
                continue
            self._consider(to_logical(physical), completion)
        return stop

    # -- reporting ------------------------------------------------------------
    @property
    def resident_pages(self) -> list:
        """Sorted logical pages currently cached."""
        return sorted(self._resident)
