"""The demand-driven client process (§4.1 client execution model).

"The client runs a continuous loop that randomly requests a page
according to a specified distribution.  If the requested page is not
cache-resident, then the client waits for the page to arrive on the
broadcast and then brings the requested page into its cache. ... Once
the requested page is cache resident, the client waits ThinkTime
broadcast units of time and then makes the next request."

The process version consumes a pre-drawn :class:`RequestTrace` so that
runs are comparable request-by-request with the fast engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.cache.base import CacheCounters, CachePolicy
from repro.core.disks import DiskLayout
from repro.server.channel import BroadcastChannel
from repro.sim.kernel import Simulator
from repro.sim.process import Process
from repro.sim.stats import RunningStats
from repro.workload.mapping import LogicalPhysicalMapping
from repro.workload.trace import RequestTrace


@dataclass
class ClientReport:
    """Measurements accumulated by one client."""

    response: RunningStats = field(default_factory=RunningStats)
    counters: CacheCounters = field(default_factory=CacheCounters)
    samples: Optional[List[float]] = None
    warmup_requests: int = 0
    #: Simulator clock when the client finished its trace, in broadcast
    #: units — the process-engine counterpart of the fast engine's
    #: ``EngineOutcome.final_time``.
    final_time: float = 0.0
    #: Channel switches during the measured phase (multi-channel runs
    #: only; a single-channel client never retunes).
    retunes: int = 0

    @property
    def mean_response_time(self) -> float:
        """Mean measured response time in broadcast units."""
        return self.response.mean

    def access_locations(self, num_disks: int) -> Dict[str, float]:
        """Fraction of measured accesses served per location."""
        return self.counters.access_locations(num_disks)


@dataclass
class ChannelTuner:
    """Single-frequency tuner over the channels of a multi-channel program.

    A client listens to exactly one channel at a time.  When a miss
    targets a page on a different channel, the tuner switches and the
    earliest usable completion moves ``retune_cost`` broadcast units
    into the future (the channel's ``wait_for(..., not_before=...)``).
    Each client owns its own tuner: the tuned-channel state is
    per-client, even when clients share the physical channels.
    """

    channels: Sequence[BroadcastChannel]
    channel_of: Mapping[int, int]
    retune_cost: float = 1.0
    #: Currently tuned channel; every client starts on channel 0.
    current: int = 0
    #: Lifetime channel switches (warm-up included).
    retunes: int = 0


class Client:
    """A cache-equipped client running on the simulation kernel."""

    def __init__(
        self,
        sim: Simulator,
        channel: BroadcastChannel,
        mapping: LogicalPhysicalMapping,
        layout: DiskLayout,
        cache: CachePolicy,
        trace: RequestTrace,
        think_time: float,
        warmup_requests: Optional[int] = None,
        collect_responses: bool = False,
        extra_warmup: int = 0,
        name: str = "client",
        tracer=None,
        tuner: Optional[ChannelTuner] = None,
    ):
        self.sim = sim
        self.channel = channel
        #: Optional :class:`ChannelTuner` for multi-channel programs;
        #: ``None`` keeps the single-channel miss path byte-identical.
        self.tuner = tuner
        self.mapping = mapping
        self.layout = layout
        self.cache = cache
        self.trace = trace
        self.think_time = think_time
        self.warmup_requests = warmup_requests
        self.extra_warmup = extra_warmup
        self.name = name
        #: Optional :class:`repro.obs.trace.Tracer` emitting
        #: ``client.request`` / ``client.hit`` / ``client.miss`` /
        #: ``client.wait`` records; ``None`` costs one branch per request.
        self.tracer = tracer
        self.report = ClientReport(
            samples=[] if collect_responses else None
        )
        self.process: Process = sim.process(self._run())

    def _run(self):
        sim = self.sim
        cache = self.cache
        report = self.report
        warming = True
        extra_left = self.extra_warmup

        tracer = self.tracer
        if tracer is not None and not tracer.enabled:
            tracer = None

        for index in range(len(self.trace)):
            page = self.trace[index]
            yield sim.timeout(self.think_time)

            if warming:
                if self.warmup_requests is not None:
                    warming = report.warmup_requests < self.warmup_requests
                elif cache.is_full:
                    if extra_left <= 0:
                        warming = False
                    else:
                        extra_left -= 1
            measuring = not warming
            if warming:
                report.warmup_requests += 1
            if tracer is not None:
                tracer.emit(
                    "client.request", sim.now, page=int(page),
                    client=self.name,
                    phase="measured" if measuring else "warmup",
                )

            if cache.lookup(page, sim.now):
                if tracer is not None:
                    tracer.emit("client.hit", sim.now, page=int(page),
                                client=self.name)
                if measuring:
                    report.response.add(0.0)
                    report.counters.record_hit()
                    if report.samples is not None:
                        report.samples.append(0.0)
                continue

            physical = self.mapping.to_physical(page)
            issued = sim.now
            if tracer is not None:
                tracer.emit("client.miss", issued, page=int(page),
                            physical=int(physical), client=self.name)
            tuner = self.tuner
            if tuner is None:
                yield self.channel.wait_for(physical)
            else:
                target = tuner.channel_of[physical]
                if target != tuner.current:
                    tuner.retunes += 1
                    if measuring:
                        report.retunes += 1
                    if tracer is not None:
                        tracer.emit(
                            "client.retune", issued, page=int(page),
                            physical=int(physical),
                            from_channel=tuner.current, to_channel=target,
                            client=self.name,
                        )
                    tuner.current = target
                    yield tuner.channels[target].wait_for(
                        physical, not_before=issued + tuner.retune_cost
                    )
                else:
                    yield tuner.channels[target].wait_for(physical)
            wait = sim.now - issued
            cache.admit(page, sim.now)
            if tracer is not None:
                tracer.emit("client.wait", sim.now, page=int(page),
                            physical=int(physical), wait=wait,
                            client=self.name)
            if measuring:
                report.response.add(wait)
                report.counters.record_miss(self.layout.disk_of_page(physical))
                if report.samples is not None:
                    report.samples.append(wait)

        report.final_time = sim.now
        return report
