"""Client-side components.

* :mod:`~repro.client.client` — the demand-driven client process of the
  paper's §4.1 model: think, request, serve from cache or wait on the
  broadcast, repeat.
* :mod:`~repro.client.prefetch` — the opportunistic prefetching
  extension sketched in the paper's §7 ("use the broadcast as a way to
  opportunistically increase the temperature of its cache").
"""

from repro.client.client import Client, ClientReport
from repro.client.prefetch import PrefetchEngine, pt_value

__all__ = ["Client", "ClientReport", "PrefetchEngine", "pt_value"]
