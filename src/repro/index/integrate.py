"""Indexing the *multidisk* broadcast (§7: "integrate indexes with the
multilevel disk").

:func:`index_schedule` generalises the (1, m) builder from a flat
carousel to any :class:`~repro.core.schedule.BroadcastSchedule`:

* the data portion of the combined cycle is the multidisk program's slot
  sequence (pages repeat according to their disk's frequency; padding
  slots are dropped — the index replaces their role);
* ``m`` full index copies are interleaved at (nearly) even spacing;
* bottom-level index entries point to the **next occurrence** of the key
  after the index bucket — on a multidisk program a hot page has many
  occurrences, so both its access *and* the pointer distances shrink.

The payoff measured in ``benchmarks/bench_indexing.py`` /
:func:`repro.experiments.figures.indexing_tradeoff`'s multidisk variant:
under skewed access the indexed multidisk broadcast gives hot keys much
lower access latency than the indexed flat broadcast at the same
(constant) tuning cost.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.schedule import BroadcastSchedule
from repro.errors import ConfigurationError
from repro.index.onem import DATA, INDEX, Bucket, IndexedBroadcast
from repro.index.tree import DispatchTree, TreeNode


def index_schedule(
    schedule: BroadcastSchedule,
    m: int,
    fanout: int = 4,
) -> IndexedBroadcast:
    """Interleave ``m`` index copies with an arbitrary broadcast program."""
    if m < 1:
        raise ConfigurationError(f"m must be >= 1, got {m}")
    data_slots: List[int] = [
        page for page in schedule.slots if page >= 0  # drop padding
    ]
    if m > len(data_slots):
        raise ConfigurationError(
            f"cannot interleave {m} index copies with {len(data_slots)} "
            "data slots"
        )
    keys = sorted(set(data_slots))
    tree = DispatchTree(keys, fanout)
    nodes = tree.nodes_in_broadcast_order()
    node_number = {id(node): index for index, node in enumerate(nodes)}
    index_size = len(nodes)

    # ------------------------------------------------------------------
    # Pass 1: layout.  Split the data sequence into m nearly-even runs,
    # each preceded by a full index copy.
    # ------------------------------------------------------------------
    run_length = -(-len(data_slots) // m)
    layout: List[Tuple[str, object]] = []
    node_positions_per_segment: List[dict] = []
    root_positions: List[int] = []
    for segment in range(m):
        root_positions.append(len(layout))
        positions = {}
        for node_index, _node in enumerate(nodes):
            positions[node_index] = len(layout)
            layout.append((INDEX, node_index))
        node_positions_per_segment.append(positions)
        for page in data_slots[segment * run_length : (segment + 1) * run_length]:
            layout.append((DATA, page))
    cycle = len(layout)

    # Occurrence positions of each key in the combined cycle (sorted).
    occurrences: dict = {key: [] for key in keys}
    for position, (kind, payload) in enumerate(layout):
        if kind == DATA:
            occurrences[payload].append(position)

    def next_occurrence_offset(source: int, key: int) -> int:
        """Forward distance from ``source`` to the key's next data bucket."""
        slots = occurrences[key]
        for position in slots:
            if position > source:
                return position - source
        return slots[0] + cycle - source  # wrap

    # ------------------------------------------------------------------
    # Pass 2: resolve pointers.
    # ------------------------------------------------------------------
    buckets: List[Bucket] = []
    segment = -1
    for position, (kind, payload) in enumerate(layout):
        if position in root_positions:
            segment += 1
        next_root = min(
            root for root in root_positions + [root_positions[0] + cycle]
            if root > position
        )
        next_index_offset = next_root - position
        if kind == DATA:
            buckets.append(
                Bucket(
                    kind=DATA,
                    key=payload,  # type: ignore[arg-type]
                    next_index_offset=next_index_offset,
                )
            )
            continue
        node: TreeNode = nodes[payload]  # type: ignore[index]
        entries = []
        for child_position, (low, high) in enumerate(zip(node.lows, node.highs)):
            child = node.children[child_position]
            if isinstance(child, TreeNode):
                target = node_positions_per_segment[segment][
                    node_number[id(child)]
                ]
                offset = (target - position) % cycle
            else:
                key = tree.keys[child]
                offset = next_occurrence_offset(position, key)
            entries.append((low, high, offset))
        buckets.append(
            Bucket(
                kind=INDEX,
                next_index_offset=next_index_offset,
                entries=entries,
            )
        )

    return IndexedBroadcast(
        buckets=buckets,
        keys=keys,
        m=m,
        fanout=fanout,
        index_size=index_size,
        tree_depth=tree.depth,
    )
