"""Closed-form expectations for (1, m) indexing and the optimal m.

With ``D`` data buckets, index size ``I`` buckets, and ``m`` index
replicas per cycle:

* cycle length ``C = m I + D``;
* index segments are ``C / m`` apart, so a random probe waits
  ``C / (2m)`` on average for the next index root;
* from the root, the wanted data bucket is uniformly distributed over
  the cycle: another ``C / 2`` expected — total access
  ``≈ C/(2m) + C/2`` (plus small constants for the probe bucket and
  final read);
* tuning is ``depth + 2`` buckets: the initial probe, one bucket per
  tree level, and the data bucket.

Minimising access over ``m`` gives the classic ``m* = sqrt(D / I)``
[Imie94b].  The simulation in :mod:`repro.index.client` is the ground
truth; the bench validates these formulas against it.
"""

from __future__ import annotations

import math
from typing import Dict

from repro.errors import ConfigurationError
from repro.index.tree import DispatchTree


def index_size(num_data_buckets: int, fanout: int) -> int:
    """Index buckets needed for ``num_data_buckets`` at ``fanout``."""
    return DispatchTree.expected_node_count(num_data_buckets, fanout)


def tree_depth(num_data_buckets: int, fanout: int) -> int:
    """Levels in the dispatch tree (bottom inclusive)."""
    if num_data_buckets < 1:
        raise ConfigurationError("need at least one data bucket")
    depth = 1
    reach = fanout
    while reach < num_data_buckets:
        reach *= fanout
        depth += 1
    return depth


def expected_access_time(
    num_data_buckets: int, m: int, fanout: int
) -> float:
    """Expected probe-to-page latency under (1, m), in buckets."""
    if m < 1:
        raise ConfigurationError(f"m must be >= 1, got {m}")
    size = index_size(num_data_buckets, fanout)
    cycle = m * size + num_data_buckets
    return cycle / (2.0 * m) + cycle / 2.0 + 1.0


def expected_tuning_time(num_data_buckets: int, m: int, fanout: int) -> float:
    """Expected buckets listened to under (1, m)."""
    # m does not appear: replication trades access time for nothing in
    # tuning (every probe still reads probe + path + data).
    return tree_depth(num_data_buckets, fanout) + 2.0


def optimal_m(num_data_buckets: int, fanout: int) -> int:
    """The access-time-minimising replication factor ``sqrt(D/I)``."""
    size = index_size(num_data_buckets, fanout)
    ideal = math.sqrt(num_data_buckets / size)
    best = max(1, round(ideal))
    # Integer neighbourhood check (the float optimum sits between two
    # integers; pick the better one exactly).
    candidates = {max(1, best - 1), best, best + 1}
    return min(
        candidates,
        key=lambda m: expected_access_time(num_data_buckets, m, fanout),
    )


def no_index_expectations(num_data_buckets: int) -> Dict[str, float]:
    """Expected access and tuning without an index (they coincide)."""
    expectation = (num_data_buckets + 1) / 2.0
    return {"access": expectation, "tuning": expectation}


def one_m_expectations(
    num_data_buckets: int, m: int, fanout: int
) -> Dict[str, float]:
    """Both (1, m) expectations plus the layout constants, for reports."""
    return {
        "access": expected_access_time(num_data_buckets, m, fanout),
        "tuning": expected_tuning_time(num_data_buckets, m, fanout),
        "index_size": float(index_size(num_data_buckets, fanout)),
        "cycle": float(m * index_size(num_data_buckets, fanout) + num_data_buckets),
    }
