"""The (1, m) index organisation [Imie94b].

The broadcast cycle interleaves ``m`` copies of the full index with the
data: ``[index][data/m] [index][data/m] ...``.  Every bucket carries the
offset to the next index segment, so a client tuning in cold can read
one bucket, doze to the index, and navigate from there.

Offsets are *forward bucket distances* modulo the cycle: an index entry
for a child says "wake up in ``k`` buckets".  Internal children point at
index buckets later in the same segment; bottom-level entries point at
the data bucket carrying the key (possibly wrapping into the next
cycle, when the data segment already passed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.index.tree import DispatchTree, TreeNode

#: Bucket kinds.
INDEX = "index"
DATA = "data"


@dataclass
class Bucket:
    """One broadcast bucket: an index node or a data page.

    Attributes
    ----------
    kind:
        ``"index"`` or ``"data"``.
    key:
        The page key carried (data buckets only).
    next_index_offset:
        Forward distance (buckets) from this bucket to the next index
        segment's root bucket.
    entries:
        Index buckets only: ``(low_key, high_key, forward_offset)``
        per child.
    """

    kind: str
    key: Optional[int] = None
    next_index_offset: int = 0
    entries: List[Tuple[int, int, int]] = field(default_factory=list)


class IndexedBroadcast:
    """A periodic (1, m) broadcast of index and data buckets."""

    def __init__(
        self,
        buckets: Sequence[Bucket],
        keys: Sequence[int],
        m: int,
        fanout: int,
        index_size: int,
        tree_depth: int,
    ):
        self.buckets = list(buckets)
        self.keys = list(keys)
        self.m = m
        self.fanout = fanout
        self.index_size = index_size
        self.tree_depth = tree_depth

    @property
    def cycle_length(self) -> int:
        """Buckets per broadcast cycle."""
        return len(self.buckets)

    @property
    def num_data_buckets(self) -> int:
        """Data buckets per cycle (>= distinct keys when pages repeat)."""
        return sum(1 for bucket in self.buckets if bucket.kind == DATA)

    def bucket_at(self, position: int) -> Bucket:
        """The bucket broadcast at (cyclic) ``position``."""
        return self.buckets[position % self.cycle_length]

    def data_position(self, key: int) -> int:
        """Cycle position of the data bucket carrying ``key``."""
        for position, bucket in enumerate(self.buckets):
            if bucket.kind == DATA and bucket.key == key:
                return position
        raise ConfigurationError(f"key {key} is not carried by this broadcast")

    def index_root_positions(self) -> List[int]:
        """Cycle positions of each index segment's root bucket."""
        roots = []
        position = 0
        while position < len(self.buckets):
            if self.buckets[position].kind == INDEX:
                roots.append(position)
                position += self.index_size
            else:
                position += 1
        return roots


def _forward_distance(source: int, target: int, cycle: int) -> int:
    """Buckets from ``source`` forward to ``target`` (0 means same slot)."""
    return (target - source) % cycle


def build_one_m_broadcast(
    keys: Sequence[int],
    m: int,
    fanout: int = 4,
) -> IndexedBroadcast:
    """Assemble the (1, m) cycle for ``keys`` (sorted page ids).

    The data is split into ``m`` nearly-equal consecutive segments; a
    full serialised index precedes each.  All pointer offsets are
    resolved against the final cycle layout.
    """
    keys = list(keys)
    if m < 1:
        raise ConfigurationError(f"m must be >= 1, got {m}")
    if m > len(keys):
        raise ConfigurationError(
            f"cannot split {len(keys)} data buckets into {m} segments"
        )
    tree = DispatchTree(keys, fanout)
    nodes = tree.nodes_in_broadcast_order()
    index_size = len(nodes)

    # ------------------------------------------------------------------
    # Pass 1: lay out bucket kinds and remember positions.
    # ------------------------------------------------------------------
    segment_size = -(-len(keys) // m)  # ceil division
    layout: List[Tuple[str, object]] = []  # (kind, node | key)
    node_positions_per_segment: List[Dict[int, int]] = []
    data_positions: Dict[int, int] = {}
    root_positions: List[int] = []
    for segment in range(m):
        root_positions.append(len(layout))
        positions: Dict[int, int] = {}
        for node_index, node in enumerate(nodes):
            positions[node_index] = len(layout)
            layout.append((INDEX, node))
        node_positions_per_segment.append(positions)
        for key in keys[segment * segment_size : (segment + 1) * segment_size]:
            data_positions[key] = len(layout)
            layout.append((DATA, key))
    cycle = len(layout)

    # ------------------------------------------------------------------
    # Pass 2: resolve offsets.
    # ------------------------------------------------------------------
    node_number = {id(node): index for index, node in enumerate(nodes)}
    buckets: List[Bucket] = []
    segment = -1
    for position, (kind, payload) in enumerate(layout):
        if position in root_positions:
            segment += 1
        next_root = min(
            (root for root in root_positions + [root_positions[0] + cycle]
             if root > position),
        )
        next_index_offset = next_root - position
        if kind == DATA:
            buckets.append(
                Bucket(
                    kind=DATA,
                    key=payload,  # type: ignore[arg-type]
                    next_index_offset=next_index_offset,
                )
            )
            continue
        node: TreeNode = payload  # type: ignore[assignment]
        entries: List[Tuple[int, int, int]] = []
        for child_position, (low, high) in enumerate(zip(node.lows, node.highs)):
            child = node.children[child_position]
            if isinstance(child, TreeNode):
                target = node_positions_per_segment[segment][
                    node_number[id(child)]
                ]
            else:
                target = data_positions[tree.keys[child]]
            entries.append(
                (low, high, _forward_distance(position, target, cycle))
            )
        buckets.append(
            Bucket(
                kind=INDEX,
                next_index_offset=next_index_offset,
                entries=entries,
            )
        )

    return IndexedBroadcast(
        buckets=buckets,
        keys=keys,
        m=m,
        fanout=fanout,
        index_size=index_size,
        tree_depth=tree.depth,
    )
