"""The selective-tuning client protocol for indexed broadcasts.

A probe for key ``k`` starting at bucket position ``t``:

1. tune in and read the current bucket (1 bucket of tuning) — if by
   luck it *is* the data bucket for ``k``, done;
2. doze until the next index segment's root (pointer read in step 1);
3. walk the dispatch tree: read an index bucket, pick the entry whose
   key range covers ``k``, doze exactly to the target bucket — one
   bucket of tuning per level;
4. the final hop lands on the data bucket; read it (1 bucket).

If no entry along the path covers ``k``, the broadcast does not carry
the key: the client learns this after at most ``depth + 1`` tuned
buckets instead of listening through a full fruitless cycle —
selective tuning's second win.

**Access time** is the completion instant of the data bucket minus the
probe instant; **tuning time** counts buckets actually listened to.
The energy story: a receiver in doze mode draws orders of magnitude
less power than one actively listening, so tuning time is the battery
budget while access time is the latency budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ConfigurationError
from repro.index.onem import DATA, INDEX, IndexedBroadcast


@dataclass(frozen=True)
class ProbeResult:
    """Outcome of one client probe."""

    key: int
    found: bool
    access_time: int
    tuning_time: int
    #: Cycle positions of every bucket the client listened to, in order.
    tuned_positions: tuple

    @property
    def doze_time(self) -> int:
        """Buckets spent dozing (access minus tuning)."""
        return self.access_time - self.tuning_time


class TuningClient:
    """Executes selective-tuning probes against an indexed broadcast."""

    def __init__(self, broadcast: IndexedBroadcast):
        self.broadcast = broadcast

    def probe(self, key: int, start: int) -> ProbeResult:
        """Resolve ``key`` beginning at (cyclic) bucket position ``start``."""
        if start < 0:
            raise ConfigurationError(f"start position must be >= 0, got {start}")
        broadcast = self.broadcast
        cycle = broadcast.cycle_length

        position = start
        tuned: List[int] = []

        # Step 1: read the bucket going by right now.
        bucket = broadcast.bucket_at(position)
        tuned.append(position % cycle)
        if bucket.kind == DATA and bucket.key == key:
            return ProbeResult(
                key=key,
                found=True,
                access_time=1,
                tuning_time=1,
                tuned_positions=tuple(tuned),
            )

        # Step 2: doze to the next index root.
        position += bucket.next_index_offset
        bucket = broadcast.bucket_at(position)
        tuned.append(position % cycle)

        # Step 3: walk the tree.
        while bucket.kind == INDEX:
            offset = self._entry_offset(bucket, key)
            if offset is None:
                # The broadcast does not carry this key.
                return ProbeResult(
                    key=key,
                    found=False,
                    access_time=position + 1 - start,
                    tuning_time=len(tuned),
                    tuned_positions=tuple(tuned),
                )
            position += offset
            bucket = broadcast.bucket_at(position)
            tuned.append(position % cycle)

        # Step 4: the data bucket.
        assert bucket.kind == DATA and bucket.key == key, (
            "index pointers must land on the requested data bucket"
        )
        return ProbeResult(
            key=key,
            found=True,
            access_time=position + 1 - start,
            tuning_time=len(tuned),
            tuned_positions=tuple(tuned),
        )

    @staticmethod
    def _entry_offset(bucket, key: int) -> Optional[int]:
        for low, high, offset in bucket.entries:
            if low <= key <= high:
                return offset
        return None

    # -- aggregate measurement ------------------------------------------------
    def measure(self, keys, starts) -> "ProbeStats":
        """Run one probe per ``(key, start)`` pair and aggregate."""
        access_total = 0
        tuning_total = 0
        count = 0
        misses = 0
        for key, start in zip(keys, starts):
            result = self.probe(int(key), int(start))
            access_total += result.access_time
            tuning_total += result.tuning_time
            misses += 0 if result.found else 1
            count += 1
        if count == 0:
            raise ConfigurationError("measure() needs at least one probe")
        return ProbeStats(
            probes=count,
            mean_access_time=access_total / count,
            mean_tuning_time=tuning_total / count,
            not_found=misses,
        )


@dataclass(frozen=True)
class ProbeStats:
    """Aggregate probe measurements."""

    probes: int
    mean_access_time: float
    mean_tuning_time: float
    not_found: int


def flat_probe(num_data_buckets: int, target_position: int, start: int) -> ProbeResult:
    """Reference protocol on an *unindexed* carousel: listen until found.

    With self-identifying pages and no index, the client must stay tuned
    from the probe instant until the page goes by, so tuning time equals
    access time — the baseline the (1, m) organisation improves on.
    """
    if not 0 <= target_position < num_data_buckets:
        raise ConfigurationError("target outside the carousel")
    wait = (target_position - start) % num_data_buckets + 1
    return ProbeResult(
        key=target_position,
        found=True,
        access_time=wait,
        tuning_time=wait,
        tuned_positions=tuple(
            (start + i) % num_data_buckets for i in range(wait)
        ),
    )
