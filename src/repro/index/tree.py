"""A balanced n-ary dispatch tree over the keys of one broadcast cycle.

The tree answers "which data bucket carries key k?" in ``depth`` probes.
It is *logical*: the (1, m) layout (:mod:`repro.index.onem`) serialises
it into index buckets and assigns broadcast offsets; the tree itself
only knows key ranges and child structure.

Keys are the sorted page ids carried by the cycle; leaves reference data
bucket positions (0-based within the data sequence).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.errors import ConfigurationError


@dataclass
class TreeNode:
    """One dispatch node: key separators and children (nodes or leaves).

    ``children[i]`` is responsible for keys in ``[lows[i], highs[i]]``.
    Leaf children are integers — data bucket positions; internal
    children are further :class:`TreeNode` objects.
    """

    lows: List[int] = field(default_factory=list)
    highs: List[int] = field(default_factory=list)
    children: List = field(default_factory=list)

    @property
    def is_bottom(self) -> bool:
        """True when the children are data-bucket positions."""
        return bool(self.children) and not isinstance(self.children[0], TreeNode)

    def child_for(self, key: int) -> Optional[int]:
        """Index of the child whose range covers ``key`` (None if absent)."""
        for position, (low, high) in enumerate(zip(self.lows, self.highs)):
            if low <= key <= high:
                return position
        return None


class DispatchTree:
    """Balanced n-ary tree over the sorted keys of a broadcast cycle."""

    def __init__(self, keys: Sequence[int], fanout: int):
        if fanout < 2:
            raise ConfigurationError(f"fanout must be >= 2, got {fanout}")
        keys = list(keys)
        if not keys:
            raise ConfigurationError("a dispatch tree needs at least one key")
        if sorted(set(keys)) != keys:
            raise ConfigurationError("keys must be strictly increasing")
        self.fanout = fanout
        self.keys = keys
        self.root, self.depth, self.node_count = self._build(keys, fanout)

    @staticmethod
    def _build(keys: Sequence[int], fanout: int):
        # Bottom level: one node per `fanout` data buckets.
        level: List[TreeNode] = []
        for start in range(0, len(keys), fanout):
            node = TreeNode()
            for position in range(start, min(start + fanout, len(keys))):
                node.lows.append(keys[position])
                node.highs.append(keys[position])
                node.children.append(position)  # data bucket position
            level.append(node)
        depth = 1
        count = len(level)
        # Grow upward until a single root remains.
        while len(level) > 1:
            parents: List[TreeNode] = []
            for start in range(0, len(level), fanout):
                parent = TreeNode()
                for child in level[start : start + fanout]:
                    parent.lows.append(child.lows[0])
                    parent.highs.append(child.highs[-1])
                    parent.children.append(child)
                parents.append(parent)
            count += len(parents)
            level = parents
            depth += 1
        return level[0], depth, count

    def lookup_path(self, key: int) -> Optional[List[TreeNode]]:
        """The node path (root..bottom) followed to resolve ``key``.

        Returns None for keys the cycle does not carry.
        """
        path = [self.root]
        node = self.root
        while True:
            position = node.child_for(key)
            if position is None:
                return None
            child = node.children[position]
            if not isinstance(child, TreeNode):
                return path
            path.append(child)
            node = child

    def data_position(self, key: int) -> Optional[int]:
        """Data bucket position carrying ``key`` (None if absent)."""
        path = self.lookup_path(key)
        if path is None:
            return None
        bottom = path[-1]
        position = bottom.child_for(key)
        return None if position is None else bottom.children[position]

    def nodes_in_broadcast_order(self) -> List[TreeNode]:
        """All nodes, root first then depth-first — the serialised order.

        Broadcasting parents before children means a client can always
        doze *forward* from a parent to the child it needs.
        """
        ordered: List[TreeNode] = []

        def visit(node: TreeNode) -> None:
            ordered.append(node)
            if not node.is_bottom:
                for child in node.children:
                    visit(child)

        visit(self.root)
        return ordered

    @staticmethod
    def expected_node_count(num_keys: int, fanout: int) -> int:
        """Index buckets needed for ``num_keys`` leaves at ``fanout``.

        ``sum_l ceil(num_keys / fanout^l)`` over the tree's levels.
        """
        count = 0
        remaining = num_keys
        while remaining > 1:
            remaining = math.ceil(remaining / fanout)
            count += remaining
        return max(count, 1)
