"""Indexing on air: selective tuning for broadcast clients.

The paper broadcasts self-identifying pages, so a client waiting for a
page must listen *continuously* — its tuning time (the energy-relevant
metric on battery devices) equals its access time.  §2.1's footnote and
the related work (§6) point at the alternative: interleave an index with
the data, as in Imielinski, Viswanathan & Badrinath's *Energy Efficient
Indexing on Air* [Imie94b], so clients can doze between index-directed
wake-ups.  §7 lists integrating indexes with the multilevel disk as
future work; this subpackage builds the substrate:

* :mod:`~repro.index.tree` — a balanced n-ary dispatch tree over the
  keys carried by a broadcast cycle.
* :mod:`~repro.index.onem` — the classic **(1, m)** organisation: the
  full index is broadcast ``m`` times per cycle, evenly interleaved with
  the data segments, and every bucket carries a pointer to the next
  index segment.
* :mod:`~repro.index.client` — the selective-tuning client protocol:
  probe, doze to the next index, walk the tree dozing between levels,
  doze to the data bucket.  Reports both access time and tuning time.
* :mod:`~repro.index.analysis` — closed-form expectations and the
  optimal replication ``m* = sqrt(Data / Index)``.

Times are in *bucket units* (the index analogue of the paper's broadcast
unit); tuning time counts buckets actually listened to.
"""

from repro.index.analysis import (
    expected_access_time,
    expected_tuning_time,
    no_index_expectations,
    optimal_m,
)
from repro.index.client import ProbeResult, TuningClient
from repro.index.onem import Bucket, IndexedBroadcast, build_one_m_broadcast
from repro.index.tree import DispatchTree

__all__ = [
    "Bucket",
    "DispatchTree",
    "IndexedBroadcast",
    "ProbeResult",
    "TuningClient",
    "build_one_m_broadcast",
    "expected_access_time",
    "expected_tuning_time",
    "no_index_expectations",
    "optimal_m",
]
