#!/usr/bin/env python3
"""A battery-powered pager tuning selectively into an indexed broadcast.

Scenario: a municipal alert service broadcasts 1,000 information pages
(transit delays, parking, events) on a loop.  Handheld receivers are
battery-constrained: listening to the radio costs ~100x the power of
dozing.  The paper's plain broadcast forces a receiver to listen from
the moment it wants a page until the page goes by; with the (1, m)
index organisation the receiver reads a handful of buckets and dozes
through everything else.

The example sweeps the index replication factor m and reports both
costs, then estimates battery life for a duty-cycled receiver.

Run::

    python examples/powersave_pager.py
"""

import numpy as np

from repro.index import (
    TuningClient,
    build_one_m_broadcast,
    no_index_expectations,
    optimal_m,
)

PAGES = 1_000
FANOUT = 8
PROBES = 3_000

#: Relative power draw: active listening vs doze (typical receiver).
ACTIVE_POWER = 100.0
DOZE_POWER = 1.0


def energy(access: float, tuning: float) -> float:
    """Relative energy of one probe: listen + doze power-time products."""
    return tuning * ACTIVE_POWER + (access - tuning) * DOZE_POWER


def main() -> None:
    rng = np.random.default_rng(7)
    flat = no_index_expectations(PAGES)
    flat_energy = energy(flat["access"], flat["tuning"])

    print(f"Municipal alert broadcast: {PAGES} pages, fanout {FANOUT}")
    print(f"receiver power model: listen {ACTIVE_POWER:.0f}x doze\n")
    print(f"{'organisation':<16}{'access (bu)':>12}{'tuning (bu)':>12}"
          f"{'rel. energy':>12}")
    print("-" * 52)
    print(f"{'no index':<16}{flat['access']:>12.1f}{flat['tuning']:>12.1f}"
          f"{1.0:>12.2f}")

    keys = list(range(PAGES))
    for m in (1, 2, 3, 4, 8):
        broadcast = build_one_m_broadcast(keys, m=m, fanout=FANOUT)
        client = TuningClient(broadcast)
        starts = rng.integers(0, broadcast.cycle_length, size=PROBES)
        targets = rng.choice(keys, size=PROBES)
        stats = client.measure(targets, starts)
        relative = energy(
            stats.mean_access_time, stats.mean_tuning_time
        ) / flat_energy
        marker = "  <- m*" if m == optimal_m(PAGES, FANOUT) else ""
        print(f"{f'(1, {m}) index':<16}{stats.mean_access_time:>12.1f}"
              f"{stats.mean_tuning_time:>12.1f}{relative:>12.3f}{marker}")

    print()
    print("Reading ~6 buckets instead of ~500 cuts the per-lookup energy")
    print("to about 2-3% of the unindexed receiver's, at roughly twice")
    print("the latency — the [Imie94b] tradeoff the paper cites, rebuilt.")


if __name__ == "__main__":
    main()
