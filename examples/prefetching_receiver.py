#!/usr/bin/env python3
"""Opportunistic prefetching: upgrading the cache as pages fly by.

The paper closes (§7) with: "We are currently investigating how
prefetching could be introduced into the present scheme.  The client
cache manager would use the broadcast as a way to opportunistically
increase the temperature of its cache."

This example implements that idea with the PT rule — value a page by
``probability x time-until-next-broadcast`` and swap it into the cache
whenever it beats the least valuable resident — and compares three
receivers on the same broadcast and workload:

* demand LRU   (classic cache, fetch on miss),
* demand LIX   (the paper's cost-based cache),
* PT prefetcher (snoops every slot).

Run::

    python examples/prefetching_receiver.py
"""

from repro import ExperimentConfig, run_experiment
from repro.client.prefetch import PrefetchEngine
from repro.workload.trace import generate_trace

SCENARIO = dict(
    disk_sizes=(500, 2000, 2500),  # the paper's D5
    delta=3,
    cache_size=500,
    offset=500,
    noise=0.30,
    num_requests=5_000,
    seed=11,
)


def demand_receiver(policy: str) -> float:
    """Mean response time of a demand-driven receiver."""
    config = ExperimentConfig(policy=policy, **SCENARIO)
    return run_experiment(config).mean_response_time


def prefetch_receiver() -> float:
    """Mean response time of the PT prefetcher on the same scenario."""
    config = ExperimentConfig(**SCENARIO)
    layout = config.build_layout()
    schedule = config.build_schedule(layout)
    streams = config.build_streams()
    mapping = config.build_mapping(layout, streams)
    distribution = config.build_distribution()
    probabilities = distribution.probabilities()

    engine = PrefetchEngine(
        schedule=schedule,
        mapping=mapping,
        layout=layout,
        probability=lambda page: (
            float(probabilities[page]) if page < len(probabilities) else 0.0
        ),
        cache_capacity=config.cache_size,
        think_time=config.think_time,
    )
    trace = generate_trace(
        distribution,
        2 * config.num_requests,
        streams.stream("requests"),
    )
    outcome = engine.run_trace(trace, warmup_requests=config.num_requests)
    return outcome.response.mean


def main() -> None:
    print("Receiver comparison — D5 broadcast, Δ=3, 30% noise, 500-page cache")
    print()
    lru = demand_receiver("LRU")
    lix = demand_receiver("LIX")
    pt = prefetch_receiver()
    print(f"  demand LRU    : {lru:7.1f} broadcast units")
    print(f"  demand LIX    : {lix:7.1f} broadcast units "
          f"({lru / lix:.2f}x better than LRU)")
    print(f"  PT prefetcher : {pt:7.1f} broadcast units "
          f"({lru / pt:.2f}x better than LRU)")
    print()
    print("The prefetcher never issues an upstream request and never")
    print("pays a demand miss for a page it has already seen drift past —")
    print("on a broadcast medium, listening is free.")


if __name__ == "__main__":
    main()
