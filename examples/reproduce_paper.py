#!/usr/bin/env python3
"""Regenerate the paper's full evaluation from the command line.

Runs any subset of the tables/figures of Acharya et al. (SIGMOD '95) and
prints the series as aligned tables; optionally writes CSVs for external
plotting.  This is the same machinery the ``benchmarks/`` harness uses,
packaged for interactive use.

Examples::

    python examples/reproduce_paper.py --list
    python examples/reproduce_paper.py table1 fig5
    python examples/reproduce_paper.py fig13 --requests 2000 --csv-dir out/
    python examples/reproduce_paper.py all --requests 1000   # quick pass
"""

import argparse
import os
import sys

from repro.experiments.reporting import format_table, write_csv

#: The artifact registry lives in the library's CLI module so the bench
#: harness, `python -m repro figures`, and this script all agree.
from repro.experiments.cli import ARTIFACTS

def parse_args(argv):
    parser = argparse.ArgumentParser(
        description="Reproduce tables/figures of the Broadcast Disks paper."
    )
    parser.add_argument(
        "artifacts",
        nargs="*",
        help=f"which artifacts to run ({', '.join(ARTIFACTS)}, or 'all')",
    )
    parser.add_argument("--list", action="store_true", help="list artifacts")
    parser.add_argument(
        "--requests",
        type=int,
        default=None,
        help="measured requests per design point (default: paper's 15000)",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--csv-dir", default=None, help="also write one CSV per artifact here"
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes per sweep (results identical at any count)",
    )
    return parser.parse_args(argv)


def main(argv=None) -> int:
    args = parse_args(argv if argv is not None else sys.argv[1:])
    if args.list or not args.artifacts:
        print("available artifacts:")
        for name, (fn, _scalable, _parallel) in ARTIFACTS.items():
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"  {name:<8} {doc}")
        return 0

    names = list(ARTIFACTS) if args.artifacts == ["all"] else args.artifacts
    unknown = [name for name in names if name not in ARTIFACTS]
    if unknown:
        print(f"unknown artifacts: {', '.join(unknown)}", file=sys.stderr)
        return 2

    if args.csv_dir:
        os.makedirs(args.csv_dir, exist_ok=True)

    for name in names:
        fn, scalable, parallel = ARTIFACTS[name]
        kwargs = {}
        if scalable:
            kwargs["seed"] = args.seed
            if args.requests is not None:
                kwargs["num_requests"] = args.requests
        if parallel:
            kwargs["jobs"] = args.jobs
        data = fn(**kwargs)
        print(format_table(data))
        if args.csv_dir:
            path = os.path.join(args.csv_dir, f"{name}.csv")
            write_csv(data, path)
            print(f"wrote {path}\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
