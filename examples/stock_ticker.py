#!/usr/bin/env python3
"""Designing a broadcast for a stock-ticker dissemination service.

Scenario (from the paper's §1.1 motivation: "information dispersal
systems for volatile, time-sensitive information such as stock prices"):
a feed provider broadcasts quote pages for 2,000 instruments over a
satellite downlink.  Interest is heavily skewed — a handful of tickers
account for most lookups — and the provider wants to choose the number
of disks, the partitioning, and the relative spin speeds.

This example shows the broadcast *design* workflow:

1. model the measured popularity histogram,
2. let the optimiser search partitionings and speeds against the exact
   analytic delay model,
3. compare the result with naive designs (flat disk, a hand-built
   2-disk split), including the square-root-rule lower bound,
4. validate the winner by simulation.

Run::

    python examples/stock_ticker.py
"""

import numpy as np

from repro import DiskLayout, ExperimentConfig, run_experiment
from repro.core.analysis import (
    flat_expected_delay,
    multidisk_expected_delay,
    sqrt_rule_lower_bound,
)
from repro.core.optimizer import optimize_layout

NUM_INSTRUMENTS = 2_000
REGION = 50  # popularity plateaus: instruments are ranked in blocks of 50


def measured_popularity() -> dict:
    """A Zipf-like popularity histogram over ranked instruments.

    Block r of 50 instruments receives weight (1/r)^1.1 — a long-tailed
    profile typical of quote-lookup traffic.
    """
    ranks = np.arange(1, NUM_INSTRUMENTS // REGION + 1)
    block_weights = (1.0 / ranks) ** 1.1
    per_page = np.repeat(block_weights / REGION, REGION)
    per_page = per_page / per_page.sum()
    return {page: float(p) for page, p in enumerate(per_page)}


def main() -> None:
    popularity = measured_popularity()

    # ------------------------------------------------------------------
    # Baselines: flat broadcast, and a hand-built "hot 10% fast" split.
    # ------------------------------------------------------------------
    flat_delay = flat_expected_delay(NUM_INSTRUMENTS)
    hand_built = DiskLayout.from_delta((200, 1800), delta=3)
    hand_delay = multidisk_expected_delay(hand_built, popularity)
    bound = sqrt_rule_lower_bound(popularity)

    print("Stock ticker broadcast design")
    print(f"  instruments                 : {NUM_INSTRUMENTS}")
    print(f"  flat broadcast delay        : {flat_delay:8.1f} page-units")
    print(f"  hand-built {hand_built.describe():<17}: {hand_delay:8.1f} page-units")
    print(f"  sqrt-rule lower bound       : {bound:8.1f} page-units")

    # ------------------------------------------------------------------
    # Optimiser: search partitionings (cuts on popularity plateaus) and
    # delta values for up to 3 disks.
    # ------------------------------------------------------------------
    shaped = optimize_layout(
        popularity,
        total_pages=NUM_INSTRUMENTS,
        max_disks=3,
        deltas=range(0, 10),
    )
    print(f"  optimised {shaped.layout.describe():<18}: "
          f"{shaped.expected_delay:8.1f} page-units "
          f"(delta={shaped.delta}, {shaped.evaluated} candidates, "
          f"{shaped.optimality_gap:.2f}x the lower bound)")

    # ------------------------------------------------------------------
    # Validate by simulation: a terminal that looks up quotes with the
    # same popularity profile and no cache (thin set-top receiver).
    # ------------------------------------------------------------------
    print()
    print("Simulation check (no client cache):")
    for label, layout in (
        ("flat", DiskLayout.flat(NUM_INSTRUMENTS)),
        ("hand-built", hand_built),
        ("optimised", shaped.layout),
    ):
        config = ExperimentConfig(
            disk_sizes=layout.sizes,
            rel_freqs=layout.rel_freqs,
            cache_size=1,
            access_range=NUM_INSTRUMENTS,
            region_size=REGION,
            theta=1.1,
            num_requests=10_000,
            seed=2024,
            label=label,
        )
        result = run_experiment(config)
        print(f"  {label:<11}: {result.mean_response_time:8.1f} page-units "
              f"(period {result.schedule_period})")

    print()
    print("The optimised program gets the popular tickers to terminals "
          "several times faster than a flat carousel, at zero extra "
          "bandwidth — the whole point of Broadcast Disks.")


if __name__ == "__main__":
    main()
