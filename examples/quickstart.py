#!/usr/bin/env python3
"""Quickstart: build a broadcast disk, attach a client, measure it.

This walks the library's three layers in ~60 lines:

1. construct a multi-disk broadcast program (the paper's §2.2 algorithm),
2. inspect its timing properties analytically,
3. simulate a cache-equipped client and report response time.

Run::

    python examples/quickstart.py
"""

from repro import ExperimentConfig, ProgramSpec, run_experiment


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A broadcast program: 3 disks, hottest pages spinning fastest.
    #    This is the paper's D5 configuration at delta=3 (speeds 7:4:1).
    # ------------------------------------------------------------------
    layout, program = ProgramSpec(
        sizes=(500, 2000, 2500), delta=3
    ).build()
    print("Broadcast program", layout.describe())
    print(f"  period           : {program.period} broadcast units")
    print(f"  padding slots    : {program.empty_slots} "
          f"({program.empty_slots / program.period:.2%} of the cycle)")

    # ------------------------------------------------------------------
    # 2. Analytic timing: every page has a fixed inter-arrival time, so
    #    expected delays are exact, no simulation needed.
    # ------------------------------------------------------------------
    for disk in range(layout.num_disks):
        page = layout.pages_on_disk(disk)[0]
        print(f"  disk {disk + 1}: every {int(program.gaps(page)[0])} units "
              f"-> expected wait {program.expected_delay(page):.0f} units")

    # ------------------------------------------------------------------
    # 3. Simulate a client with a 500-page cache running the paper's
    #    cost-based LIX replacement, 30% workload noise.
    # ------------------------------------------------------------------
    config = ExperimentConfig(
        disk_sizes=(500, 2000, 2500),
        delta=3,
        cache_size=500,
        policy="LIX",
        offset=500,     # hottest (cached) pages parked on the slow disk
        noise=0.30,     # broadcast only 70% matched to this client
        num_requests=15_000,
        seed=7,
    )
    result = run_experiment(config)
    print()
    print("Simulated client (LIX policy, 30% noise):")
    print(f"  mean response time : {result.mean_response_time:.1f} broadcast units")
    print(f"  cache hit rate     : {result.hit_rate:.1%}")
    print(f"  access locations   : "
          + ", ".join(f"{k}={v:.1%}" for k, v in result.access_locations.items()))

    # The flat-broadcast reference for the same client: half the database.
    flat = run_experiment(config.with_(delta=0, label="flat reference"))
    print(f"  flat-disk reference: {flat.mean_response_time:.1f} broadcast units")
    speedup = flat.mean_response_time / result.mean_response_time
    print(f"  multi-disk speedup : {speedup:.2f}x")


if __name__ == "__main__":
    main()
