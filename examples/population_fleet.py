#!/usr/bin/env python3
"""A city-scale traffic-info fleet: one broadcast, thousands of receivers.

Scenario (paper §1.1: "dissemination of traffic and routing information"):
a metropolitan operator broadcasts a road-status database to every
navigation unit in town.  The units are *not* interchangeable:

* commuters run mid-sized caches with whatever replacement policy their
  vendor shipped (LRU or the paper's cost-based LIX);
* fleet dashboards in delivery vans poll hard (short think times) and
  watch a shifted slice of the database (offset);
* couriers drive across neighbourhoods, so their hot set *drifts*
  during the day while the broadcast keeps serving the morning profile.

A :class:`repro.population.PopulationSpec` captures that fleet in one
declarative object; ``run_population`` simulates every client (each
with its own derived seed), then folds the fleet into mergeable
aggregates: mean-of-means, p50/p90/p99 tail percentiles, and Jain's
fairness index — the number that tells the operator whether the
broadcast shape serves *everyone* or just the average client.

The fleet is deterministic end to end: the same spec produces the same
plans, and ``jobs=4`` produces byte-identical aggregates to ``jobs=1``.

Run::

    python examples/population_fleet.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import ExperimentConfig, PopulationSpec, SegmentSpec, run_population
from repro.population import Choice, Uniform, UniformInt

DB = (300, 1200, 3500)  # the paper's D4 layout
CLIENTS = 120           # scale freely: 120 here, thousands in production


def build_fleet() -> PopulationSpec:
    base = ExperimentConfig(
        disk_sizes=DB,
        delta=3,
        cache_size=300,
        policy="LIX",
        num_requests=2_000,
        seed=42,
    )
    return PopulationSpec(
        name="traffic-info",
        base=base,
        seed=2026,
        segments=(
            SegmentSpec(
                "commuters", CLIENTS // 2,
                cache_size=UniformInt(100, 500),
                policy=Choice(("LRU", "LIX"), weights=(0.7, 0.3)),
                noise=Uniform(0.0, 0.30),
            ),
            SegmentSpec(
                "dashboards", CLIENTS // 4,
                think_time=Uniform(0.0, 1.0),
                offset=UniformInt(0, 800),
            ),
            SegmentSpec(
                "couriers", CLIENTS // 4,
                drift_rotations=Uniform(0.5, 2.0),
                cache_size=UniformInt(50, 200),
            ),
        ),
    )


def main() -> None:
    spec = build_fleet()
    print(f"fleet '{spec.name}': {spec.num_clients} clients in "
          f"{len(spec.segments)} segments over D4 {DB}")

    done = {"count": 0}

    def progress(completed, total, _result):
        if completed in (total // 4, total // 2, 3 * total // 4, total):
            print(f"  ... {completed}/{total} clients simulated")
        done["count"] = completed

    result = run_population(spec, jobs=1, progress=progress)

    print()
    print(result.summary())
    print()
    print(f"{'segment':<12} {'clients':>7} {'mean':>8} {'p90':>8} "
          f"{'p99':>8} {'fairness':>9} {'hit rate':>9}")
    rows = [("overall", result.overall)] + list(result.segments.items())
    for name, aggregate in rows:
        snap = aggregate.snapshot()
        print(f"{name:<12} {snap['clients']:>7} "
              f"{snap['response_mean']['mean']:>8.1f} "
              f"{snap['percentiles']['p90']:>8.1f} "
              f"{snap['percentiles']['p99']:>8.1f} "
              f"{snap['fairness']:>9.3f} "
              f"{snap['hit_rate']:>9.1%}")

    print()
    worst = min(result.segments.items(),
                key=lambda item: item[1].fairness.jain)
    print(f"least even segment: {worst[0]} "
          f"(fairness {worst[1].fairness.jain:.3f}) — the broadcast "
          "shape is tuned for the average client; the spread inside "
          "each segment is what a server-side reshape would target.")


if __name__ == "__main__":
    main()
