#!/usr/bin/env python3
"""Kiosks with a back channel: when should a client ask instead of wait?

Scenario (paper §6: upstream communication through low-bandwidth links):
an airport operator broadcasts 500 pages of flight status, gate maps,
and advisories to departure-hall kiosks.  Kiosks also have a slow serial
back channel to the head office; the broadcast server reserves every
second slot for answering explicit pull requests.

Each kiosk uses a simple rule — *pull if the broadcast would make me
wait more than T units* — and takes whichever copy arrives first.  The
question the simulation answers: how does that rule behave as terminals
multiply?

Run::

    python examples/newsflash_kiosk.py
"""

import math

from repro.hybrid.study import run_hybrid_population

SCENARIO = dict(
    disk_sizes=(50, 200, 250),
    delta=3,
    pull_spacing=2,        # half the channel reserved for pulls
    access_range=100,
    region_size=10,
    cache_size=10,
    requests_per_client=150,
    upstream_capacity=1,   # one serial back channel for the whole hall
    upstream_latency=1.0,
)


def mean_response(num_clients: int, pull_threshold: float) -> float:
    reports = run_hybrid_population(
        num_clients, pull_threshold=pull_threshold, seed=42, **SCENARIO
    )
    return sum(report.mean_response_time for report in reports) / num_clients


def main() -> None:
    print("Airport kiosk broadcast — half the channel reserved for pulls")
    print(f"{'kiosks':>8}{'wait-for-push (bu)':>20}{'ask-if-slow (bu)':>18}"
          f"{'verdict':>24}")
    print("-" * 70)
    for kiosks in (1, 8, 32, 128, 256):
        mute = mean_response(kiosks, math.inf)
        hybrid = mean_response(kiosks, 50.0)
        verdict = (
            "ask: huge win" if hybrid < mute / 4
            else "ask: modest win" if hybrid < mute * 0.95
            else "just wait"
        )
        print(f"{kiosks:>8}{mute:>20.1f}{hybrid:>18.1f}{verdict:>24}")

    print()
    print("One kiosk gets near-on-demand service from the pull queue;")
    print("hundreds of kiosks saturate it and the broadcast does the")
    print("heavy lifting again.  Push scales with listeners; pull does")
    print("not — which is why the paper broadcasts in the first place.")


if __name__ == "__main__":
    main()
