#!/usr/bin/env python3
"""A wireless field-service fleet sharing one broadcast (multi-client).

Scenario (paper §1.1: "wireless networks with stationary base stations
and mobile clients"): a base station broadcasts a 700-page manual +
work-order database to a fleet of field technicians' handhelds.  The
server shapes the broadcast for the *average* technician, but individual
technicians differ:

* most are "aligned" — their hot pages match the server's ranking;
* a specialist cares about different pages, so from their point of view
  the server's ranking is half wrong (modelled as 50% mapping noise:
  many of their hot pages ride slow disks);
* handhelds have small caches, and the point of the exercise is that a
  cost-based cache (LIX) rescues the mismatched client where plain LRU
  cannot.

The example runs all clients concurrently on the process-oriented
discrete-event engine and demonstrates the broadcast's headline scaling
property: adding clients costs nothing.

Run::

    python examples/mobile_field_service.py
"""

from repro.cache.base import PolicyContext
from repro.cache.registry import make_policy
from repro.core.disks import DiskLayout
from repro.core.programs import ProgramSpec
from repro.experiments.simengine import ClientSpec, run_clients
from repro.sim.rng import RandomStreams
from repro.workload.mapping import LogicalPhysicalMapping
from repro.workload.trace import generate_trace
from repro.workload.zipf import ZipfRegionDistribution

DB_PAGES = 700
ACCESS_RANGE = 140
CACHE_PAGES = 35
REQUESTS = 2_500


def make_client(
    name: str,
    layout: DiskLayout,
    schedule,
    policy_name: str,
    streams: RandomStreams,
    mapping: LogicalPhysicalMapping,
    trace=None,
) -> ClientSpec:
    """Wire up one technician: workload, mapping, cache policy."""
    distribution = ZipfRegionDistribution(
        access_range=ACCESS_RANGE, region_size=10, theta=0.95
    )
    probabilities = distribution.probabilities()
    context = PolicyContext(
        probability=lambda page: (
            float(probabilities[page]) if page < ACCESS_RANGE else 0.0
        ),
        frequency=lambda page: schedule.frequency(mapping.to_physical(page)),
        disk_of=lambda page: layout.disk_of_page(mapping.to_physical(page)),
        num_disks=layout.num_disks,
    )
    # Steady-state protocol: warm up (cache fill + 2x the measured
    # length) before measuring, like the paper's §5.
    return ClientSpec(
        mapping=mapping,
        cache=make_policy(policy_name, CACHE_PAGES, context),
        trace=trace if trace is not None else generate_trace(
            distribution, 4 * REQUESTS, streams.stream(f"requests-{name}")
        ),
        think_time=2.0,
        extra_warmup=2 * REQUESTS,
        name=name,
    )


def main() -> None:
    # The base station shapes a 3-disk broadcast for the average client.
    layout, schedule = ProgramSpec(sizes=(70, 210, 420), delta=3).build()
    streams = RandomStreams(99)

    print("Field-service broadcast", layout.describe(),
          f"(period {schedule.period} units)")
    print("fleet: 6 aligned technicians, 1 specialist "
          "(50% of their hot pages mis-ranked by the server)\n")

    aligned_mapping = LogicalPhysicalMapping(layout)
    # The specialist's mismatch: half their hot pages mis-ranked.  Built
    # once so the LRU and LIX runs face the identical broadcast reality.
    specialist_mapping = LogicalPhysicalMapping(
        layout,
        noise=0.5,
        rng=streams.stream("specialist-noise"),
        noise_scope=ACCESS_RANGE,
    )

    specs = []
    # Aligned technicians: LRU caches, interests match the broadcast.
    for index in range(6):
        specs.append(
            make_client(f"tech-{index}", layout, schedule, "LRU",
                        streams, aligned_mapping)
        )
    # The specialist, twice: once with LRU, once with cost-based LIX.
    # One request trace, used by both: a paired LRU/LIX comparison.
    specialist_trace = generate_trace(
        ZipfRegionDistribution(ACCESS_RANGE, 10, 0.95),
        4 * REQUESTS,
        streams.stream("requests-specialist"),
    )
    specs.append(make_client("specialist-LRU", layout, schedule, "LRU",
                             streams, specialist_mapping,
                             trace=specialist_trace))
    specs.append(make_client("specialist-LIX", layout, schedule, "LIX",
                             streams, specialist_mapping,
                             trace=specialist_trace))

    reports = run_clients(schedule, layout, specs)

    print(f"{'client':<16}{'response (bu)':>14}{'hit rate':>10}")
    print("-" * 40)
    for spec, report in zip(specs, reports):
        print(f"{spec.name:<16}{report.mean_response_time:>14.1f}"
              f"{report.counters.hit_rate:>10.1%}")

    aligned = [
        report.mean_response_time
        for spec, report in zip(specs, reports)
        if spec.name.startswith("tech-")
    ]
    by_name = {
        spec.name: report.mean_response_time
        for spec, report in zip(specs, reports)
    }
    print()
    average = sum(aligned) / len(aligned)
    print(f"aligned fleet average        : {average:.1f} bu")
    print(f"specialist penalty with LRU  : "
          f"{by_name['specialist-LRU'] / average:.2f}x")
    print(f"specialist penalty with LIX  : "
          f"{by_name['specialist-LIX'] / average:.2f}x")
    print()
    print("The broadcast served the whole fleet at once (no contention), "
          "and the cost-based LIX cache recovers a large part of the "
          "mismatch penalty for the specialist — the paper's §3 argument "
          "in action.")


if __name__ == "__main__":
    main()
