"""Extension bench: (1, m) indexing on air — tuning vs access tradeoff.

The paper's clients listen continuously while waiting (tuning time =
access time).  The [Imie94b] (1, m) organisation the paper cites (§6)
and plans to integrate (§7) buys orders-of-magnitude less listening —
the battery budget — for a bounded increase in latency.

Expected shape:

* tuning time collapses from ~cycle/2 to tree-depth + 2 buckets
  (constant in m);
* access time has an interior minimum in m near the analytic
  ``m* = sqrt(Data/Index)``;
* the simulated access curve tracks the closed-form model.
"""

from benchmarks.conftest import bench_seed, print_figure, run_once
from repro.experiments.figures import indexing_tradeoff
from repro.index.analysis import no_index_expectations, optimal_m

DATA_BUCKETS = 1000
FANOUT = 8


def test_indexing_tradeoff(benchmark):
    data = run_once(
        benchmark,
        indexing_tradeoff,
        num_data_buckets=DATA_BUCKETS,
        fanout=FANOUT,
        seed=bench_seed(),
    )
    print_figure(data)

    flat = no_index_expectations(DATA_BUCKETS)
    access = data.series["access (sim)"]
    analytic = data.series["access (analytic)"]
    tuning = data.series["tuning (sim)"]

    # Tuning collapses by >25x versus continuous listening, for every m.
    assert all(value < flat["tuning"] / 25 for value in tuning)

    # Tuning is (nearly) constant in m: replication buys latency only.
    assert max(tuning) - min(tuning) < 0.5

    # Access pays a bounded premium over the unindexed carousel.
    assert all(value < flat["access"] * 4 for value in access)

    # Interior access minimum near the analytic optimum.
    best_m = data.x_values[access.index(min(access))]
    assert abs(best_m - optimal_m(DATA_BUCKETS, FANOUT)) <= 2

    # Simulation tracks the closed form within the wrap-bias tolerance.
    for simulated, model in zip(access, analytic):
        assert abs(simulated - model) / model < 0.15


def test_indexed_multidisk_integration(benchmark):
    """§7's integration: the multidisk win survives the index detour."""
    from repro.experiments.figures import indexed_multidisk_study

    data = run_once(benchmark, indexed_multidisk_study, seed=bench_seed())
    print_figure(data)

    access = dict(zip(data.x_values, data.series["access (bu)"]))
    tuning = dict(zip(data.x_values, data.series["tuning (bu)"]))
    flat_name = "flat + (1,3) index"
    multi_name = "multidisk + (1,8) index"

    # Same selective-tuning cost...
    assert abs(tuning[multi_name] - tuning[flat_name]) < 0.5
    # ...meaningfully better access under the skewed workload.
    assert access[multi_name] < 0.85 * access[flat_name]
