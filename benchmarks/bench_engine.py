"""Old-vs-new wall-clock benchmark for the fast engine's hot path.

Runs the full Figure-5 grid (five disk presets x Δ=0..7, 40 design
points) through two engines sharing one :class:`BuildCache`:

* ``fast-reference`` — the frozen pre-optimisation loop: one
  general-purpose loop, arrivals by bisection
  (:meth:`~repro.experiments.engine.FastEngine.run_trace_reference`);
* ``fast`` — the optimized loop of ``docs/PERFORMANCE.md``: two-phase
  allocation-free stepping over the schedule's precomputed timing
  structures.

**Equality is the gate, speedup is the report.**  The benchmark fails
unless every per-point ``mean_response_time`` and config hash is
identical between the two arms; the observed speedup is recorded to
``BENCH_engine.json`` and only enforced (>= ``MIN_SPEEDUP``) in the
standalone run, where the grid is big enough to measure honestly.

Runs standalone (writes ``BENCH_engine.json``) or under pytest (tiny
scale, no file output)::

    PYTHONPATH=src python benchmarks/bench_engine.py
    pytest benchmarks/bench_engine.py
"""

from __future__ import annotations

import json
import os
import platform
import sys
from pathlib import Path

_SRC = str(Path(__file__).resolve().parent.parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.exec import BuildCache, execute_plan, plan_sweep
from repro.experiments.config import (
    DELTA_RANGE,
    DISK_PRESETS,
    ExperimentConfig,
)
from repro.obs.clock import perf_counter
from repro.obs.manifest import config_hash

#: Acceptance target (ISSUE 5): the optimized loop must at least halve
#: the fig5-grid wall clock relative to the frozen reference loop.
#: CI sets ``REPRO_BENCH_MIN_SPEEDUP=0`` — shared runners are too noisy
#: for a fair ratio, so there the equality check alone is the gate and
#: the printed speedup is informational.
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", 2.0))

#: Measured requests per sweep point (reduced from the paper's 15_000
#: so both arms finish in seconds; per-request cost dominates either
#: way, so the speedup transfers to full scale).
REQUESTS = int(os.environ.get("REPRO_BENCH_REQUESTS", 2000))


def fig5_grid(num_requests: int = REQUESTS):
    """The Figure 5 grid: every preset x every Δ, uncached clients."""
    return [
        ExperimentConfig(
            disk_sizes=DISK_PRESETS[preset],
            delta=delta,
            cache_size=1,
            noise=0.0,
            offset=0,
            access_range=100,
            region_size=10,
            num_requests=num_requests,
            seed=42,
            label=f"{preset} Δ={delta}",
        )
        for preset in ("D1", "D2", "D3", "D4", "D5")
        for delta in DELTA_RANGE
    ]


def prebuild(configs):
    """One warm BuildCache covering the grid's broadcast structures.

    Both arms run against the same layouts and schedules, so the
    (identical, deterministic) construction cost is paid once outside
    the timed regions and the comparison isolates the engine loops.
    """
    builds = BuildCache()
    started = perf_counter()
    for config in configs:
        builds.layout_and_schedule(config)
    return builds, perf_counter() - started


def run_arm(configs, engine: str, builds):
    """Execute every config on ``engine`` against the shared builds."""
    plans = plan_sweep(configs, engine=engine)
    started = perf_counter()
    results = [execute_plan(plan, builds=builds) for plan in plans]
    seconds = perf_counter() - started
    return results, seconds


def check_identical(reference, optimized, configs):
    """Raise AssertionError on any per-point divergence between arms."""
    for config, ref, new in zip(configs, reference, optimized):
        assert config_hash(ref.config) == config_hash(new.config), (
            f"{config.label}: config hash diverged between arms"
        )
        assert ref.mean_response_time == new.mean_response_time, (
            f"{config.label}: mean_response_time diverged — "
            f"reference {ref.mean_response_time!r} "
            f"vs optimized {new.mean_response_time!r}"
        )
        assert ref.hit_rate == new.hit_rate, (
            f"{config.label}: hit rate diverged"
        )


def build_report(reference, reference_seconds, optimized, optimized_seconds,
                 configs, build_seconds):
    points = [
        {
            "label": config.label,
            "config_hash": config_hash(result.config),
            "mean_response_time": result.mean_response_time,
            "hit_rate": result.hit_rate,
        }
        for config, result in zip(configs, optimized)
    ]
    return {
        "schema": "repro.bench.engine/1",
        "benchmark": "fig5 grid, fast-reference vs fast (shared BuildCache)",
        "grid_points": len(configs),
        "num_requests": REQUESTS,
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "shared_build_seconds": build_seconds,
        "arms": {
            "fast-reference": {"wall_seconds": reference_seconds},
            "fast": {"wall_seconds": optimized_seconds},
        },
        "speedup": reference_seconds / optimized_seconds,
        "min_speedup_target": MIN_SPEEDUP,
        "identical_per_point_results": True,
        "points": points,
    }


def test_engine_arms_identical_and_timed():
    """Pytest entry: tiny scale, equality gate only (no speedup gate)."""
    configs = fig5_grid(num_requests=150)[:8]
    builds, _ = prebuild(configs)
    reference, reference_seconds = run_arm(configs, "fast-reference", builds)
    optimized, optimized_seconds = run_arm(configs, "fast", builds)
    check_identical(reference, optimized, configs)
    assert reference_seconds > 0 and optimized_seconds > 0


def main() -> int:
    configs = fig5_grid()
    print(f"fig5 grid: {len(configs)} points x {REQUESTS} requests, "
          f"fast-reference vs fast")

    builds, build_seconds = prebuild(configs)
    reference, reference_seconds = run_arm(configs, "fast-reference", builds)
    optimized, optimized_seconds = run_arm(configs, "fast", builds)
    try:
        check_identical(reference, optimized, configs)
    except AssertionError as error:
        print(f"FAIL: {error}", file=sys.stderr)
        return 1

    speedup = reference_seconds / optimized_seconds
    print(f"  shared build   : {build_seconds:.3f}s (untimed, both arms)")
    print(f"  fast-reference : {reference_seconds:.3f}s")
    print(f"  fast           : {optimized_seconds:.3f}s")
    print(f"  speedup        : {speedup:.2f}x")
    print("  per-point results identical -- OK")

    report = build_report(
        reference, reference_seconds, optimized, optimized_seconds, configs,
        build_seconds,
    )
    out = Path(__file__).resolve().parent.parent / "BENCH_engine.json"
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"  wrote {out}")

    if speedup < MIN_SPEEDUP:
        print(f"FAIL: speedup {speedup:.2f}x below the {MIN_SPEEDUP:.0f}x "
              "target", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
