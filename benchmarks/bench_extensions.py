"""Extension benches: the paper's future-work directions, measured.

* **Bus Stop Paradox** (§2.1): flat / clustered-skewed / random /
  multidisk on the same bandwidth allocation — multidisk must win.
* **Broadcast shaping** (§2.2/§7 open problem): the analytic optimiser's
  layout versus the paper's D1-D5 presets, cross-validated by
  simulation.
* **Prefetching** (§7): the PT rule versus demand-driven LIX/PIX.
* **Policy zoo** (§5.5): LRU-K and 2Q — the cited "better LRU"
  candidates — against LIX, showing recency tweaks alone do not close
  the cost-awareness gap.
"""

from benchmarks.conftest import bench_seed, print_figure, run_once
from repro.experiments.figures import (
    bus_stop_paradox,
    policy_zoo,
    prefetch_comparison,
    shaping_ablation,
)


def test_bus_stop_paradox(benchmark):
    data = run_once(benchmark, bus_stop_paradox, seed=bench_seed())
    print_figure(data)
    delays = dict(zip(data.x_values, data.series["expected delay"]))
    assert delays["multidisk"] < delays["skewed"]
    assert delays["multidisk"] < delays["random"]
    assert delays["multidisk"] < delays["flat"]
    # Clustering and randomising are both strictly worse than fixed
    # spacing for the same allocation (the paradox itself).
    assert delays["skewed"] > delays["multidisk"]


def test_broadcast_shaping(benchmark):
    data = run_once(benchmark, shaping_ablation, seed=bench_seed())
    print_figure(data)
    analytic = dict(zip(data.x_values, data.series["analytic"]))
    simulated = dict(zip(data.x_values, data.series["simulated"]))

    # The optimiser's layout beats every preset analytically.
    presets = [name for name in data.x_values if name != "optimised"]
    assert analytic["optimised"] <= min(analytic[name] for name in presets)

    # Simulation confirms the analytic model (no cache, no noise) for
    # every layout.  The tolerance allows for think-time phase
    # correlation: after a miss the client's clock is pinned to a slot
    # boundary, so arrival phases are not perfectly uniform (strongest
    # for D1, whose accessed pages share one 500-slot chunk).
    for name in data.x_values:
        assert abs(simulated[name] - analytic[name]) / analytic[name] < 0.20, name

    # And the optimiser's win is real under simulation, not only on paper.
    preset_simulated = [simulated[name] for name in presets]
    assert simulated["optimised"] < min(preset_simulated)


def test_prefetching(benchmark):
    data = run_once(benchmark, prefetch_comparison, seed=bench_seed())
    print_figure(data)
    prefetch = data.series["PT prefetch"]
    lix = data.series["demand LIX"]
    pix = data.series["demand PIX"]

    # Prefetching beats demand LIX everywhere — the broadcast installs
    # valuable pages for free, no demand miss needed.
    for index in range(len(data.x_values)):
        assert prefetch[index] < lix[index], index
    # Against the PIX *ideal* it is statistically tied: the steady PT
    # rule (p x gap/2) ranks pages identically to P/X, so the two share
    # a steady-state cache; prefetching only reaches it sooner.
    assert sum(prefetch) < sum(pix) * 1.05


def test_policy_zoo(benchmark):
    data = run_once(benchmark, policy_zoo, seed=bench_seed())
    print_figure(data)
    response = dict(zip(data.x_values, data.series["response time"]))

    # Cost-aware beats cost-blind: every frequency-aware policy (LIX,
    # PIX) beats every recency-only policy (LRU, LRU-K, 2Q).
    for aware in ("LIX", "PIX"):
        for blind in ("LRU", "LRU-K", "2Q"):
            assert response[aware] < response[blind], (aware, blind)

    # The cited LRU improvements do help over plain LRU...
    assert min(response["LRU-K"], response["2Q"]) < response["LRU"] * 1.1
    # ...but none closes the gap to LIX.
    assert response["LIX"] < 0.9 * min(response["LRU-K"], response["2Q"])
