"""Shared helpers for the benchmark harness.

Each ``bench_*.py`` module regenerates one table or figure of the paper
at full scale (ServerDBSize 5000, 15,000 measured requests) and prints
the same rows/series the paper plots, so the qualitative comparison —
who wins, by what factor, where crossovers fall — is readable directly
from the bench output.

Scale control: set ``REPRO_BENCH_REQUESTS`` to reduce the measured
request count (e.g. 2000 for a quick pass); the default is the paper's
15,000.  ``REPRO_BENCH_SEED`` overrides the seed.
``REPRO_BENCH_JOBS`` sets the worker-process count per sweep (default
1 = serial); results are byte-identical at any count.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

# Make `pytest benchmarks/` work from the repo root without an
# installed package or a PYTHONPATH=src prefix (src-layout bootstrap).
_SRC = str(Path(__file__).resolve().parent.parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import pytest

from repro.experiments.reporting import ascii_chart, format_table


def bench_requests(default: int = 15_000) -> int:
    """Measured request count for this bench run (env-overridable)."""
    return int(os.environ.get("REPRO_BENCH_REQUESTS", default))


def bench_seed() -> int:
    """Experiment seed for this bench run (env-overridable)."""
    return int(os.environ.get("REPRO_BENCH_SEED", 42))


def bench_jobs() -> int:
    """Worker processes per sweep for this bench run (env-overridable)."""
    return int(os.environ.get("REPRO_BENCH_JOBS", 1))


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark ``fn`` with exactly one timed execution.

    Figure reproductions are full parameter sweeps; running them the
    default multiple-round protocol would multiply minutes of work for
    no statistical benefit.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def print_figure(data) -> None:
    """Emit a figure's table (and a sketch of its shape) to the output."""
    print()
    print(format_table(data))
    try:
        print(ascii_chart(data))
    except ValueError:
        pass  # non-numeric or degenerate series: the table suffices


@pytest.fixture
def paper_scale():
    """(num_requests, seed) honouring the env overrides."""
    return bench_requests(), bench_seed()


@pytest.fixture
def jobs():
    """Worker-process count honouring ``REPRO_BENCH_JOBS``."""
    return bench_jobs()
