"""Extension bench: hybrid push/pull population scaling.

The §6 future-work question — what does a low-bandwidth upstream buy? —
answered by simulation.  The server reserves every 2nd slot for a pull
queue; clients pull when the push wait exceeds a threshold and take
whichever delivery lands first.

Expected shape:

* push-only response is population-independent (broadcast scalability);
* a lone client with a pull path gets near-on-demand latency
  (orders of magnitude below push);
* as the population grows, pull-queue contention erodes the win until
  the hybrid falls *behind a dedicated push channel* — the reserved
  pull bandwidth costs more than it delivers.  Push scales; pull
  doesn't.  That crossover is the architectural argument for broadcast
  disks in one picture.
"""

from benchmarks.conftest import bench_seed, print_figure, run_once
from repro.hybrid.study import hybrid_population_study

POPULATIONS = (1, 8, 32, 128, 256)


def test_hybrid_population_scaling(benchmark):
    data = run_once(
        benchmark,
        hybrid_population_study,
        populations=POPULATIONS,
        requests_per_client=150,
        pull_spacing=2,
        seed=bench_seed(),
    )
    print_figure(data)

    dedicated = data.series["dedicated push"]
    push_only = data.series["push only"]
    hybrid = data.series["push + pull"]

    # Push latency is population-independent (within sampling error).
    assert max(dedicated) / min(dedicated) < 1.15
    assert max(push_only) / min(push_only) < 1.15

    # Reserving half the slots for pulls stretches pure push ~2x.
    for stretched, pure in zip(push_only, dedicated):
        assert stretched > pure * 1.5

    # A lone client's pulls are transformative.
    assert hybrid[0] < dedicated[0] / 10

    # Contention erodes the win monotonically with population...
    assert all(b > a for a, b in zip(hybrid, hybrid[1:]))

    # ...until the hybrid loses to a dedicated push channel.
    assert hybrid[-1] > dedicated[-1]
    assert hybrid[0] < dedicated[0]
