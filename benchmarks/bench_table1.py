"""Table 1: expected delay of the Figure 2 example programs.

Paper values (broadcast units):

    Access Probabilities      Flat(a)   Skewed(b)   Multi-disk(c)
    0.333 / 0.333 / 0.333      1.50       1.75         1.67
    0.50  / 0.25  / 0.25       1.50       1.625        1.50
    0.75  / 0.125 / 0.125      1.50       1.4375       1.25
    0.90  / 0.05  / 0.05       1.50       1.325        1.10
    1.00  / 0.00  / 0.00       1.50       1.25         1.00

Being closed-form, the reproduction must match these exactly.
"""

import pytest

from benchmarks.conftest import print_figure, run_once
from repro.experiments.figures import table1


def test_table1(benchmark):
    data = run_once(benchmark, table1)
    print_figure(data)

    flat = data.series["flat"]
    skewed = data.series["skewed"]
    multidisk = data.series["multidisk"]
    # Exact agreement with the published table.
    assert flat == pytest.approx([1.50] * 5)
    assert skewed == pytest.approx([1.75, 1.625, 1.4375, 1.325, 1.25])
    assert multidisk == pytest.approx([5 / 3, 1.50, 1.25, 1.10, 1.00])
    # The three qualitative points §2.1 draws from the table.
    assert flat[0] < skewed[0] and flat[0] < multidisk[0]
    assert all(m < s for m, s in zip(multidisk, skewed))
    assert multidisk[-1] < flat[-1]
