"""Serial-vs-parallel wall-clock benchmark for the plan/executor stack.

Times the full Figure-5 grid (five disk presets x Δ=0..7, 40 sweep
points) two ways — ``SerialExecutor`` and ``ParallelExecutor(jobs=N)``
— verifies the two runs are identical minus wall-clock fields, and
records the trajectory to ``BENCH_sweep.json``:

* per-point records from the sweep-manifest machinery
  (``build_sweep_manifest`` with ``strip_wall_clock`` applied);
* both arms' wall times and the observed speedup;
* the host's usable core count, because the speedup is meaningless
  without it — ``ProcessPoolExecutor`` cannot beat serial on a
  single-core container, and CI containers are routinely single-core.

The speedup gate (>= ``MIN_SPEEDUP`` with 4 workers) is enforced only
when the host actually has >= 4 usable cores; on smaller hosts the
benchmark still runs, still checks determinism, and records the
observed numbers for the artifact.

Runs standalone (writes ``BENCH_sweep.json``) or under pytest (tiny
scale, no file output)::

    PYTHONPATH=src python benchmarks/bench_sweep.py
    pytest benchmarks/bench_sweep.py
"""

from __future__ import annotations

import json
import os
import platform
import sys
from pathlib import Path

_SRC = str(Path(__file__).resolve().parent.parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.exec import ParallelExecutor, SerialExecutor, plan_sweep, usable_cores
from repro.experiments.config import (
    DELTA_RANGE,
    DISK_PRESETS,
    ExperimentConfig,
)
from repro.obs.clock import perf_counter
from repro.obs.manifest import build_sweep_manifest, strip_wall_clock

#: Acceptance target for the 4-worker fig5 sweep on a >= 4-core host.
MIN_SPEEDUP = 3.0

#: Worker count for the parallel arm.
JOBS = int(os.environ.get("REPRO_BENCH_JOBS", 4))

#: Measured requests per sweep point (reduced from the paper's 15_000
#: so the 40-point grid finishes in seconds while leaving each point
#: heavy enough to dominate process-pool dispatch overhead).
REQUESTS = int(os.environ.get("REPRO_BENCH_REQUESTS", 2000))


def fig5_grid(num_requests: int = REQUESTS):
    """The Figure 5 grid: every preset x every Δ, uncached clients."""
    return [
        ExperimentConfig(
            disk_sizes=DISK_PRESETS[preset],
            delta=delta,
            cache_size=1,
            noise=0.0,
            offset=0,
            access_range=100,
            region_size=10,
            num_requests=num_requests,
            seed=42,
            label=f"{preset} Δ={delta}",
        )
        for preset in ("D1", "D2", "D3", "D4", "D5")
        for delta in DELTA_RANGE
    ]


def run_arms(configs, jobs: int):
    """Time the serial and parallel arms over the same plans."""
    plans = plan_sweep(configs)

    started = perf_counter()
    serial = SerialExecutor().run(plans)
    serial_seconds = perf_counter() - started

    started = perf_counter()
    parallel = ParallelExecutor(jobs=jobs).run(plans)
    parallel_seconds = perf_counter() - started

    return serial, serial_seconds, parallel, parallel_seconds


def check_identical(serial, parallel):
    """Raise AssertionError unless the arms agree minus wall clock."""
    assert [r.mean_response_time for r in serial] == [
        r.mean_response_time for r in parallel
    ], "parallel execution changed the measured response times"
    serial_doc = json.dumps(
        strip_wall_clock(build_sweep_manifest(serial)), sort_keys=True
    )
    parallel_doc = json.dumps(
        strip_wall_clock(build_sweep_manifest(parallel)), sort_keys=True
    )
    assert serial_doc == parallel_doc, (
        "sweep manifests diverged beyond wall-clock fields"
    )


def build_report(serial, serial_seconds, parallel, parallel_seconds, jobs):
    trajectory = strip_wall_clock(build_sweep_manifest(serial))
    return {
        "schema": "repro.bench.sweep/1",
        "benchmark": "fig5 grid, SerialExecutor vs ParallelExecutor",
        "grid_points": len(serial),
        "num_requests": REQUESTS,
        "host": {
            "usable_cores": usable_cores(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "arms": {
            "serial": {"jobs": 1, "wall_seconds": serial_seconds},
            "parallel": {
                "jobs": jobs,
                "effective_jobs": ParallelExecutor(jobs=jobs).effective_jobs(),
                "wall_seconds": parallel_seconds,
            },
        },
        "speedup": serial_seconds / parallel_seconds,
        "min_speedup_target": MIN_SPEEDUP,
        "target_applies": usable_cores() >= jobs,
        "identical_minus_wall_clock": True,
        "trajectory": trajectory,
    }


def test_parallel_sweep_identical_and_timed():
    """Pytest entry: tiny scale, no file output."""
    configs = fig5_grid(num_requests=150)[:8]
    serial, serial_seconds, parallel, parallel_seconds = run_arms(
        configs, jobs=2
    )
    check_identical(serial, parallel)
    assert serial_seconds > 0 and parallel_seconds > 0


def main() -> int:
    configs = fig5_grid()
    cores = usable_cores()
    print(f"fig5 grid: {len(configs)} points x {REQUESTS} requests, "
          f"jobs={JOBS}, usable cores={cores}")

    serial, serial_seconds, parallel, parallel_seconds = run_arms(
        configs, jobs=JOBS
    )
    try:
        check_identical(serial, parallel)
    except AssertionError as error:
        print(f"FAIL: {error}", file=sys.stderr)
        return 1

    speedup = serial_seconds / parallel_seconds
    print(f"  serial   : {serial_seconds:.3f}s")
    print(f"  parallel : {parallel_seconds:.3f}s (jobs={JOBS})")
    print(f"  speedup  : {speedup:.2f}x")
    print("  results identical minus wall-clock fields -- OK")

    report = build_report(
        serial, serial_seconds, parallel, parallel_seconds, JOBS
    )
    out = Path(__file__).resolve().parent.parent / "BENCH_sweep.json"
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"  wrote {out}")

    if cores >= JOBS and speedup < MIN_SPEEDUP:
        print(f"FAIL: speedup {speedup:.2f}x below the {MIN_SPEEDUP:.0f}x "
              f"target on a {cores}-core host", file=sys.stderr)
        return 1
    if cores < JOBS:
        print(f"  note: host exposes {cores} usable core(s); the "
              f"{MIN_SPEEDUP:.0f}x target needs >= {JOBS} — recorded "
              "numbers are for the determinism artifact, not the gate")
    return 0


if __name__ == "__main__":
    sys.exit(main())
