"""Figure 5: client response time vs Δ, CacheSize=1, Noise=0%.

Expected shape (paper §5.1):

* at Δ=0 every configuration sits at the flat-disk 2500 bu;
* every configuration improves on flat once Δ >= 1;
* D4⟨300,1200,3500⟩ is the best configuration across the range and
  reaches roughly one-third of the flat response time at Δ=7;
* D1⟨500,4500⟩ bottoms out at moderate Δ then degrades;
* D2⟨900,4100⟩ keeps improving across the studied range;
* D3⟨2500,2500⟩ is the worst two-disk configuration;
* D5⟨500,2000,2500⟩ beats its two-disk counterpart D3.
"""

from benchmarks.conftest import print_figure, run_once
from repro.experiments.figures import figure5

FLAT = 2500.0


def test_figure5(benchmark, paper_scale, jobs):
    num_requests, seed = paper_scale
    data = run_once(benchmark, figure5, num_requests=num_requests,
                    seed=seed, jobs=jobs)
    print_figure(data)

    series = {name.split("<")[0]: values for name, values in data.series.items()}

    # Delta 0 is the flat disk for every configuration.
    for name, values in series.items():
        assert abs(values[0] - FLAT) / FLAT < 0.05, (name, values[0])

    # Everybody beats flat at delta >= 2.
    for name, values in series.items():
        assert all(value < FLAT for value in values[2:]), name

    # D4 is the best configuration at the high end...
    finals = {name: values[-1] for name, values in series.items()}
    assert min(finals, key=finals.get) == "D4"
    # ...reaching roughly one third of flat.
    assert 0.2 < finals["D4"] / FLAT < 0.45

    # D3 is the worst two-disk configuration at moderate skew.
    at_delta4 = {name: values[4] for name, values in series.items()}
    assert at_delta4["D3"] > at_delta4["D1"]
    assert at_delta4["D3"] > at_delta4["D2"]

    # D5 beats its two-disk counterpart D3.
    assert at_delta4["D5"] < at_delta4["D3"]
