"""Ablation benches for the design constants DESIGN.md calls out.

Two knobs the paper fixes without exploration:

* **LIX's estimator weight α = 0.25** (§5.5): how sensitive is LIX to
  it?  Finding: smaller α (0.05-0.10) beats the paper's 0.25 by ~35% at
  this design point — a heavier long-run component smooths the
  probability estimate, and smoother estimates make better eviction
  rankings.  α→1 (recency only) degrades, as expected.
* **The Δ-rule** (§4.2): relative frequencies of the form (N-i)Δ+1
  organise the experiment space but exclude ratios like 3:2.  How much
  performance does the restriction cost?  Expected: little — the free
  integer-frequency search finds layouts at most a few percent better
  than the best Δ-rule layout for the same partition.
"""

from benchmarks.conftest import bench_requests, bench_seed, print_figure
from repro.core.analysis import multidisk_expected_delay
from repro.core.disks import DiskLayout
from repro.core.optimizer import search_frequencies
from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import FigureData
from repro.experiments.runner import run_experiment
from repro.workload.zipf import ZipfRegionDistribution


def test_lix_alpha_sensitivity(benchmark):
    alphas = (0.05, 0.10, 0.25, 0.50, 0.75, 1.0)
    num_requests = min(bench_requests(), 8_000)

    def sweep():
        responses = []
        for alpha in alphas:
            config = ExperimentConfig(
                disk_sizes=(500, 2000, 2500),
                delta=3,
                cache_size=500,
                policy="LIX",
                lix_alpha=alpha,
                noise=0.30,
                offset=500,
                num_requests=num_requests,
                seed=bench_seed(),
            )
            responses.append(run_experiment(config).mean_response_time)
        return responses

    responses = benchmark.pedantic(sweep, rounds=1, iterations=1)
    data = FigureData(
        figure="Ablation: LIX alpha",
        title="LIX estimator weight — D5 Δ=3, Noise 30%, cache 500",
        x_label="alpha",
        x_values=list(alphas),
    )
    data.add_series("response", responses)
    print_figure(data)

    by_alpha = dict(zip(alphas, responses))
    best = min(responses)
    # The ablation's finding: a smaller, smoother alpha beats the
    # paper's 0.25 here...
    assert min(by_alpha[0.05], by_alpha[0.10]) <= by_alpha[0.25]
    # ...but the paper's choice is not catastrophic (within ~2x of best)
    assert by_alpha[0.25] < best * 2.0
    # and pure recency (alpha -> 1) is worse than the small-alpha end.
    assert by_alpha[0.75] > min(by_alpha[0.05], by_alpha[0.10])


def test_delta_rule_vs_free_frequencies(benchmark):
    """How much does restricting speeds to the Δ-rule cost?"""
    distribution = ZipfRegionDistribution(1000, 50, 0.95)
    probabilities = distribution.probability_map()
    sizes = (300, 1200, 3500)  # the paper's best preset partition (D4)

    def compare():
        best_delta = None
        for delta in range(0, 8):  # the paper's studied range
            layout = DiskLayout.from_delta(sizes, delta)
            delay = multidisk_expected_delay(layout, probabilities)
            if best_delta is None or delay < best_delta[1]:
                best_delta = (layout, delay)
        # Free search over the superset of that space (freq <= 16 covers
        # every delta-rule vector up to delta 7, whose fastest disk is 15).
        free = search_frequencies(sizes, probabilities, max_frequency=16)
        return best_delta, free

    (delta_layout, delta_delay), free = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )
    print()
    print(f"best delta-rule layout : {delta_layout.describe()} "
          f"-> {delta_delay:.1f} bu")
    print(f"best free frequencies  : {free.layout.describe()} "
          f"-> {free.expected_delay:.1f} bu "
          f"({free.evaluated} vectors searched)")
    gain = 1.0 - free.expected_delay / delta_delay
    print(f"unrestricted gain      : {gain:.2%}")

    # Free search can only do at least as well...
    assert free.expected_delay <= delta_delay + 1e-9
    # ...but the paper's simplification costs little (< 10%) — its
    # "approximate to simpler ratios" advice is sound.
    assert gain < 0.10
