"""Figure 14: page access locations for LRU, L and LIX (Δ=3, Noise=30%).

Expected shape (paper §5.5.1): the three algorithms have roughly similar
cache-hit rates, but LIX obtains a much smaller proportion of its pages
from the slowest disk — that difference in distribution, not hit rate,
drives the response-time results of Figure 13.
"""

from benchmarks.conftest import print_figure, run_once
from repro.experiments.figures import figure14


def test_figure14(benchmark, paper_scale, jobs):
    num_requests, seed = paper_scale
    data = run_once(benchmark, figure14, num_requests=num_requests,
                    seed=seed, jobs=jobs)
    print_figure(data)

    index_of = {place: index for index, place in enumerate(data.x_values)}
    lru = data.series["LRU"]
    l_series = data.series["L"]
    lix = data.series["LIX"]

    # Roughly similar cache-hit rates (within 12 percentage points).
    hits = [series[index_of["cache"]] for series in (lru, l_series, lix)]
    assert max(hits) - min(hits) < 0.12

    # LIX takes far fewer pages from the slowest disk.
    disk3 = index_of["disk3"]
    assert lix[disk3] < lru[disk3] * 0.75
    assert lix[disk3] < l_series[disk3] * 0.85

    # Each column distributes all accesses.
    for series in (lru, l_series, lix):
        assert abs(sum(series) - 1.0) < 1e-9
