"""Extension bench: query processing over the broadcast (§7).

A query needing k pages should harvest them in arrival order, not fetch
them one by one.  Expected shape:

* opportunistic makespan stays below one broadcast cycle for any k and
  tracks the closed form P*k/(k+1);
* sequential grows linearly (~ k*P/2);
* the speedup is (k+1)/2 — a 16-page form fills ~8x faster.
"""

from benchmarks.conftest import bench_seed, print_figure, run_once
from repro.experiments.figures import query_study

NUM_PAGES = 500


def test_query_processing(benchmark):
    data = run_once(benchmark, query_study, seed=bench_seed(),
                    num_pages=NUM_PAGES)
    print_figure(data)

    sequential = dict(zip(data.x_values, data.series["sequential"]))
    opportunistic = dict(zip(data.x_values, data.series["opportunistic"]))
    analytic = dict(zip(data.x_values, data.series["opportunistic (analytic)"]))

    for k in data.x_values:
        # Opportunistic never needs more than one cycle...
        assert opportunistic[k] < NUM_PAGES + 1
        # ...and tracks the closed form.
        assert abs(opportunistic[k] - analytic[k]) / analytic[k] < 0.08
        # Sequential pays per page.
        assert sequential[k] >= opportunistic[k] - 1e-9

    # The speedup grows like (k+1)/2.
    speedup_16 = sequential[16] / opportunistic[16]
    assert 6.5 < speedup_16 < 10.5
