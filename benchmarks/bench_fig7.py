"""Figure 7: noise sensitivity of D5⟨500,2000,2500⟩, CacheSize=1.

Same protocol as Figure 6 on the three-disk configuration.  Expected
shape: performance degrades with noise; the 0%-noise curve keeps the
full multi-disk win.
"""

from benchmarks.conftest import print_figure, run_once
from repro.experiments.figures import figure7
from repro.experiments.reporting import summarize_crossovers

FLAT = 2500.0


def test_figure7(benchmark, paper_scale, jobs):
    num_requests, seed = paper_scale
    data = run_once(benchmark, figure7, num_requests=num_requests,
                    seed=seed, jobs=jobs)
    print_figure(data)
    print(summarize_crossovers(data, reference=FLAT))

    quiet = data.series["Noise 0%"]
    noisy = data.series["Noise 75%"]

    # Degradation with noise at a moderate delta (index 3): the widely
    # separated noise levels must order correctly (adjacent levels can
    # swap within sampling error).
    at_delta3 = {n: data.series[f"Noise {n}%"][3] for n in (0, 30, 75)}
    assert at_delta3[0] < at_delta3[30] < at_delta3[75]

    # Quiet curve beats flat everywhere past delta 0.
    assert all(value < FLAT for value in quiet[1:])

    # Noise erodes most of the benefit at the high end.
    assert noisy[-1] > quiet[-1] * 1.5
