"""Figure 6: noise sensitivity of D3⟨2500,2500⟩, CacheSize=1.

Expected shape (paper §5.2): every noise level degrades with Δ relative
to the 0%-noise curve, and at high noise the multi-disk configuration
can perform *worse* than the flat disk — without a cache, the broadcast
must fit the client's needs to pay off.
"""

from benchmarks.conftest import print_figure, run_once
from repro.experiments.figures import figure6
from repro.experiments.reporting import summarize_crossovers

FLAT = 2500.0


def test_figure6(benchmark, paper_scale, jobs):
    num_requests, seed = paper_scale
    data = run_once(benchmark, figure6, num_requests=num_requests,
                    seed=seed, jobs=jobs)
    print_figure(data)
    print(summarize_crossovers(data, reference=FLAT))

    quiet = data.series["Noise 0%"]
    noisy = data.series["Noise 75%"]

    # Noise hurts at every skewed delta.
    for index in range(1, len(data.x_values)):
        assert noisy[index] > quiet[index]

    # At zero noise the multi-disk beats flat for delta >= 1.
    assert all(value < FLAT for value in quiet[1:])

    # At 75% noise the high-delta end is at or above the flat disk.
    assert noisy[-1] > FLAT * 0.95
