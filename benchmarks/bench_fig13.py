"""Figure 13: sensitivity to Δ of LRU, L, LIX and the PIX ideal.

D5, CacheSize=Offset=500, Noise=30%.  Expected shape (paper §5.5.1):
LRU is worst and degrades as Δ grows; L does better at small Δ then
degrades; LIX is a fraction of L's response time (the paper reports
roughly 25-50%); PIX lower-bounds LIX by a modest margin.
"""

from benchmarks.conftest import print_figure, run_once
from repro.experiments.figures import figure13


def test_figure13(benchmark, paper_scale, jobs):
    num_requests, seed = paper_scale
    data = run_once(benchmark, figure13, num_requests=num_requests,
                    seed=seed, jobs=jobs)
    print_figure(data)

    lru = data.series["LRU"]
    l_curve = data.series["L"]
    lix = data.series["LIX"]
    pix = data.series["PIX"]

    # Ordering at every skewed delta: PIX <= LIX < L < LRU.
    for index in range(1, len(data.x_values)):
        assert pix[index] <= lix[index] * 1.02, index
        assert lix[index] < l_curve[index], index
        assert l_curve[index] <= lru[index] * 1.05, index

    # LRU consistently degrades as delta increases.
    assert lru[-1] > lru[1]

    # The frequency heuristic is what matters: LIX is well below L at
    # moderate-to-high delta (paper: 25-50%; we accept < 85%).
    for index in range(3, len(data.x_values)):
        assert lix[index] < 0.85 * l_curve[index], index

    # LIX tracks the PIX ideal within a small factor.
    for index in range(1, len(data.x_values)):
        assert lix[index] < pix[index] * 2.5, index
