"""Extension bench: workload drift vs frozen oracles.

§3 lists "a client's access distribution may change over time" among the
sources of broadcast/client mismatch.  Here the client's hotspot rotates
through its access range while the broadcast and the idealised policies'
probability oracle stay frozen at the t=0 snapshot.

Expected shape:

* at zero drift the paper's ordering holds: PIX < P < LIX < LRU;
* drift collapses the frozen *probability* signal but never the
  frequency (cost) signal, so P falls hardest while PIX stays afloat on
  its cost half;
* once the hotspot moves at all, the implementable LIX — whose
  estimator keeps re-learning the probabilities — overtakes the frozen
  PIX ideal.  Adaptivity beats stale omniscience.
"""

from benchmarks.conftest import bench_seed, print_figure, run_once
from repro.experiments.figures import drift_study


def test_drift(benchmark):
    data = run_once(
        benchmark, drift_study, num_requests=10_000, seed=bench_seed()
    )
    print_figure(data)

    pix = data.series["PIX"]
    p_curve = data.series["P"]
    lix = data.series["LIX"]
    lru = data.series["LRU"]

    # Static world: the paper's ordering.
    assert pix[0] < p_curve[0] < lix[0] < lru[0]

    # Drift hurts every policy relative to its static performance.
    for series in (pix, p_curve, lix):
        assert max(series[1:]) > series[0]

    # The probability oracle decays hardest: P loses to PIX by an
    # increasing margin under drift.
    assert p_curve[2] / pix[2] > p_curve[0] / pix[0]

    # The inversion: adaptive LIX beats frozen-oracle PIX at every
    # non-zero drift rate tested.
    for index in range(1, len(data.x_values)):
        assert lix[index] < pix[index], data.x_values[index]

    # LRU stays worst throughout — adaptivity alone is not enough
    # without cost awareness.
    for index in range(len(data.x_values)):
        assert lru[index] > lix[index]
