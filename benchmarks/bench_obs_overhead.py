"""Zero-overhead-when-disabled check for the repro.obs observatory.

Runs the same reduced Figure-5-style sweep three ways — no observers at
all; a *disabled* tracer, profiler, AND monitor suite all attached
(exercising every guarded hook's branch across the whole observatory);
and an *enabled* tracer writing to an in-memory sink — and verifies:

* all three produce byte-identical mean response times (observability
  never perturbs the simulation);
* the disabled-observers sweep costs < 2% wall time over the bare
  sweep (min-of-repeats, interleaved so machine noise hits both arms).

The enabled-tracing cost is reported informationally; it is allowed to
be expensive, that is the pay-for-use bargain.

Runs standalone (CI) or under pytest::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py
    pytest benchmarks/bench_obs_overhead.py
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

_SRC = str(Path(__file__).resolve().parent.parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import sweep_results
from repro.obs.clock import perf_counter
from repro.obs.monitor import MonitorSuite
from repro.obs.profile import Profiler
from repro.obs.trace import MemorySink, Tracer

#: Maximum tolerated disabled-observers slowdown (ISSUE acceptance: 2%).
MAX_DISABLED_OVERHEAD = 0.02

#: Interleaved repeats per arm; min-of-N discards scheduler noise.
REPEATS = int(os.environ.get("REPRO_BENCH_OBS_REPEATS", 5))

#: Measured requests per configuration (reduced fig5 scale).  Large
#: enough that each sweep takes ~0.1s, so the 2% budget is measurable
#: above timer noise.
REQUESTS = int(os.environ.get("REPRO_BENCH_REQUESTS", 2000))


def _configs():
    """A reduced Figure 5 slice: D5, Δ=0..3, uncached clients."""
    return [
        ExperimentConfig(
            disk_sizes=(50, 200, 250),
            delta=delta,
            cache_size=1,
            access_range=100,
            region_size=10,
            num_requests=REQUESTS,
            seed=11,
        )
        for delta in range(4)
    ]


def _run(tracer, profile=None, monitors=None):
    """One sweep; returns (wall_seconds, mean response times)."""
    started = perf_counter()
    results = sweep_results(_configs(), tracer=tracer, profile=profile,
                            monitors=monitors)
    return perf_counter() - started, [
        result.mean_response_time for result in results
    ]


def measure(repeats: int = REPEATS):
    """Interleaved min-of-``repeats`` timing of the three arms."""
    times = {"baseline": [], "disabled": [], "enabled": []}
    means = {}
    for _ in range(repeats):
        for arm, observers in (
            ("baseline", (None, None, None)),
            # The disabled arm attaches the FULL observatory, switched
            # off: every guard branch in the hot paths gets exercised.
            ("disabled", (
                Tracer(MemorySink(capacity=1), enabled=False),
                Profiler(enabled=False),
                MonitorSuite(enabled=False),
            )),
            ("enabled", (Tracer(MemorySink(capacity=1024)), None, None)),
        ):
            tracer, profile, monitors = observers
            elapsed, arm_means = _run(tracer, profile, monitors)
            times[arm].append(elapsed)
            means[arm] = arm_means
    best = {arm: min(samples) for arm, samples in times.items()}
    return best, means


def check(best, means):
    """Raise AssertionError unless the acceptance criteria hold."""
    assert means["disabled"] == means["baseline"], (
        "disabled observers changed the measured response times:\n"
        f"  baseline: {means['baseline']}\n  disabled: {means['disabled']}"
    )
    assert means["enabled"] == means["baseline"], (
        "enabled tracing changed the measured response times:\n"
        f"  baseline: {means['baseline']}\n  enabled:  {means['enabled']}"
    )
    overhead = best["disabled"] / best["baseline"] - 1.0
    assert overhead < MAX_DISABLED_OVERHEAD, (
        f"disabled observers cost {overhead:.1%} "
        f"(budget {MAX_DISABLED_OVERHEAD:.0%}): "
        f"baseline {best['baseline']:.3f}s vs disabled {best['disabled']:.3f}s"
    )
    return overhead


def test_disabled_observers_are_free():
    """Pytest entry point for the overhead gate."""
    best, means = measure()
    check(best, means)


def main() -> int:
    best, means = measure()
    print(f"sweep: 4 configs x {REQUESTS} requests, min of {REPEATS} repeats")
    for arm in ("baseline", "disabled", "enabled"):
        print(f"  {arm:<9} {best[arm]:.3f}s")
    try:
        overhead = check(best, means)
    except AssertionError as error:
        print(f"FAIL: {error}", file=sys.stderr)
        return 1
    enabled_cost = best["enabled"] / best["baseline"] - 1.0
    print(f"disabled-observers overhead: {overhead:+.2%} "
          f"(budget {MAX_DISABLED_OVERHEAD:.0%}) -- OK")
    print(f"enabled-tracing cost     : {enabled_cost:+.2%} (informational)")
    print("response means byte-identical across all three arms -- OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
