"""Figure 8: the idealised P policy under noise.

D5, CacheSize=500, Offset=CacheSize, replacement=P.  Expected shape
(paper §5.3): the cache improves absolute response times versus the
no-cache Figure 7, yet P is *more* sensitive to noise — once Δ exceeds
~2 the high-noise curves rise above the flat-disk level, a crossover the
no-cache experiment did not show.  The cause: P caches by probability
alone, so under noise its misses increasingly land on slow disks.
"""

from benchmarks.conftest import print_figure, run_once
from repro.experiments.figures import figure8
from repro.experiments.reporting import summarize_crossovers


def test_figure8(benchmark, paper_scale, jobs):
    num_requests, seed = paper_scale
    data = run_once(benchmark, figure8, num_requests=num_requests,
                    seed=seed, jobs=jobs)
    print_figure(data)

    quiet = data.series["Noise 0%"]
    noisy = data.series["Noise 75%"]
    flat_with_cache = quiet[0]  # Δ=0 column: flat disk + P cache
    print(f"flat-disk baseline with P cache: {flat_with_cache:.0f} bu")
    print(summarize_crossovers(data, reference=flat_with_cache))

    # The cache improves absolute performance: even the flat baseline is
    # far below the no-cache 2500 bu.
    assert flat_with_cache < 2500.0 * 0.8

    # Zero noise: multi-disk still wins with a cache.
    assert min(quiet[1:]) < flat_with_cache

    # High noise at higher delta crosses above the cached flat baseline
    # (the paper's "worse than the flat disk performance" observation).
    assert max(noisy[3:]) > flat_with_cache

    # Noise ordering at delta 3.
    assert data.series["Noise 0%"][3] < data.series["Noise 75%"][3]
