"""Figure 9: the idealised PIX policy under noise.

Same setting as Figure 8 with cost-based replacement.  Expected shape
(paper §5.4.1): PIX insulates the client — response time still degrades
with noise, but stays *below* the corresponding flat-disk performance
for every noise level and Δ studied, and flattens out as Δ grows instead
of blowing up the way P does.
"""

from benchmarks.conftest import print_figure, run_once
from repro.experiments.figures import figure9
from repro.experiments.reporting import summarize_crossovers


def test_figure9(benchmark, paper_scale, jobs):
    num_requests, seed = paper_scale
    data = run_once(benchmark, figure9, num_requests=num_requests,
                    seed=seed, jobs=jobs)
    print_figure(data)

    quiet = data.series["Noise 0%"]
    flat_with_cache = quiet[0]
    print(f"flat-disk baseline with PIX cache: {flat_with_cache:.0f} bu")
    print(summarize_crossovers(data, reference=flat_with_cache))

    # The paper's headline claim: PIX stays better than flat for ALL
    # noise values and deltas in the experiment.
    for name, values in data.series.items():
        assert all(value <= flat_with_cache * 1.02 for value in values), name

    # Noise still costs something (ordering at delta 3).
    assert data.series["Noise 0%"][3] < data.series["Noise 75%"][3]

    # Stability: past delta 2 the curves do not blow up (within 35% of
    # their delta-2 value), unlike P under noise.
    for name, values in data.series.items():
        assert max(values[2:]) < values[2] * 1.35 + 50, name
