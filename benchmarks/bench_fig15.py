"""Figure 15: LRU vs L vs LIX with varying noise at Δ=3.

Expected shape (paper §5.5.1): L performs only somewhat better than LRU;
LIX degrades with noise, as expected, but outperforms both across the
entire noise range — the frequency-based heuristic keeps paying off even
when the broadcast disagrees with the client.
"""

from benchmarks.conftest import print_figure, run_once
from repro.experiments.figures import figure15


def test_figure15(benchmark, paper_scale, jobs):
    num_requests, seed = paper_scale
    data = run_once(benchmark, figure15, num_requests=num_requests,
                    seed=seed, jobs=jobs)
    print_figure(data)

    lru = data.series["LRU"]
    l_curve = data.series["L"]
    lix = data.series["LIX"]

    # LIX wins across the entire noise range.
    for index in range(len(data.x_values)):
        assert lix[index] < l_curve[index], index
        assert lix[index] < lru[index], index

    # L is at most a modest improvement over LRU (the paper: "only
    # somewhat better").
    for index in range(len(data.x_values)):
        assert l_curve[index] <= lru[index] * 1.10, index

    # Noise degrades LIX too — it shields, it does not immunise.
    assert lix[-1] > lix[0]
