"""Figure 10: P vs PIX with varying noise (Δ=3 and Δ=5, flat baseline).

Expected shape (paper §5.4.1): P degrades faster than PIX and crosses
the flat-disk line around Noise≈45%; PIX rises gradually and stays below
flat across the whole noise range; P's Δ=5 curve is worse than its Δ=3
curve (it fails to adapt to stronger skew), while PIX handles both.
"""

from benchmarks.conftest import print_figure, run_once
from repro.experiments.figures import figure10
from repro.experiments.reporting import summarize_crossovers


def test_figure10(benchmark, paper_scale, jobs):
    num_requests, seed = paper_scale
    data = run_once(benchmark, figure10, num_requests=num_requests,
                    seed=seed, jobs=jobs)
    print_figure(data)

    flat = data.series["Flat Δ=0"][0]
    print(summarize_crossovers(data, reference=flat))

    p3, p5 = data.series["P Δ=3"], data.series["P Δ=5"]
    pix3, pix5 = data.series["PIX Δ=3"], data.series["PIX Δ=5"]

    # PIX beats P wherever noise creates a probability/frequency tension
    # (at 0% noise with Offset=CacheSize the two cache the same pages).
    for p_curve, pix_curve in ((p3, pix3), (p5, pix5)):
        for index, (p_value, pix_value) in enumerate(zip(p_curve, pix_curve)):
            if data.x_values[index] == "0%":
                assert pix_value <= p_value * 1.02
            else:
                assert pix_value < p_value

    # PIX stays below the flat baseline throughout.
    assert all(value < flat for value in pix3)
    assert all(value < flat for value in pix5)

    # P eventually becomes worse than the flat disk (the paper places the
    # crossing near 45% noise).
    assert p5[-1] > flat or p3[-1] > flat
    crossing_index = next(
        (index for index, value in enumerate(p5) if value > flat), None
    )
    assert crossing_index is not None and crossing_index >= 2  # not too early

    # P degrades with higher delta under noise; PIX does not blow up.
    assert p5[-1] > p3[-1]
    assert pix5[-1] < flat
