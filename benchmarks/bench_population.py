"""Fleet-size scaling and statistical validation for repro.population.

Three studies, recorded to ``BENCH_population.json``:

* **Scaling** — a heterogeneous fleet at increasing sizes, each run
  serially and with ``jobs=N``: wall times, clients/second throughput,
  speedup, and a byte-identity check between the arms at every size.
  The speedup gate (>= ``MIN_SPEEDUP`` at the largest size) applies
  only on hosts with >= ``JOBS`` usable cores, as in ``bench_sweep``.

* **Figure-5 validation** — the population layer must agree with the
  single-client harness it wraps: a 1000-client *homogeneous* fleet
  (same config per client, per-client seeds only) is an i.i.d. sample
  of the single-client estimator, so its mean response time must match
  a reference sample of independent ``run_experiment`` calls within
  sampling error.  Checked at two Δ points of the scaled Figure-5
  setup; the gate is ``|fleet - reference| <= 4·s·sqrt(1/n_ref +
  1/n_fleet)`` with ``s`` the pooled per-client standard deviation.

* **Batch engine** — the columnar fleet engine against the per-client
  path on the 1000-client homogeneous fleet: wall time (best of
  ``BATCH_REPEATS``), clients/second, and a >= ``MIN_BATCH_SPEEDUP``
  gate, with the same within-sampling-error equivalence check between
  the two arms' fleet means (the kernel draws from group-level rather
  than per-client streams, so the contract is statistical).  A second
  study runs the same fleet on a ``CHANNELS``-channel broadcast
  program — the single-frequency tuner plus the per-channel phase
  tables — gated at >= ``MIN_MULTICHANNEL_SPEEDUP``.

Runs standalone (writes ``BENCH_population.json``) or under pytest
(tiny scale, no file output)::

    PYTHONPATH=src python benchmarks/bench_population.py
    pytest benchmarks/bench_population.py
"""

from __future__ import annotations

import json
import math
import os
import platform
import sys
from pathlib import Path

_SRC = str(Path(__file__).resolve().parent.parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.exec.plan import derive_seed
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.obs.clock import perf_counter
from repro.obs.manifest import strip_wall_clock
from repro.population import (
    Choice,
    PopulationSpec,
    SegmentSpec,
    Uniform,
    UniformInt,
    run_population,
    scale_spec,
)

#: Acceptance target for the parallel arm at the largest fleet size.
MIN_SPEEDUP = 2.5

#: Worker count for the parallel arm.
JOBS = int(os.environ.get("REPRO_BENCH_JOBS", 4))

#: Measured requests per client (reduced from the paper's 15_000 so a
#: thousand-client fleet finishes in tens of seconds; the validation
#: gate scales its tolerance with the observed spread, so the reduced
#: count costs accuracy, not correctness).
REQUESTS = int(os.environ.get("REPRO_BENCH_REQUESTS", 600))

#: Fleet sizes for the scaling study.
FLEET_SIZES = (50, 200, 800)

#: Clients in the homogeneous validation fleet.
VALIDATION_CLIENTS = 1000

#: Independent single-client reference runs per validation point.
REFERENCE_RUNS = 16

#: Seed the reference runs derive theirs from (disjoint from the
#: fleet's ``derive_seed(seed=21, ...)`` stream).
REFERENCE_SEED = 977

#: Acceptance target for the batch engine against the per-client path
#: on the 1000-client homogeneous fleet (single-threaded both sides).
MIN_BATCH_SPEEDUP = 100.0

#: Batch-arm repetitions (a kernel fleet runs in milliseconds; the
#: best-of filters scheduler noise out of the speedup ratio).
BATCH_REPEATS = 5

#: Channel count for the multi-channel batch study.
CHANNELS = 4

#: Acceptance target for the batch engine on the ``CHANNELS``-channel
#: fleet.  Lower than the single-channel target: the scalar arm is
#: itself faster per request on C channels (shorter per-channel
#: periods), which shrinks the numerator of the ratio.
MIN_MULTICHANNEL_SPEEDUP = 50.0


def hetero_spec(clients: int, num_requests: int = REQUESTS) -> PopulationSpec:
    """The scaling fleet: three segments over the reduced database."""
    base = ExperimentConfig(
        disk_sizes=(50, 200, 250),
        delta=3,
        cache_size=50,
        policy="LIX",
        access_range=100,
        region_size=10,
        num_requests=num_requests,
        seed=7,
    )
    spec = PopulationSpec(
        name="bench-hetero",
        base=base,
        seed=17,
        segments=(
            SegmentSpec(
                "mixed-caches", 5,
                cache_size=UniformInt(10, 80),
                policy=Choice(("LRU", "LIX")),
            ),
            SegmentSpec("noisy", 3, noise=Uniform(0.0, 0.45)),
            SegmentSpec("drifting", 2, drift_rotations=Uniform(0.0, 2.0)),
        ),
    )
    return scale_spec(spec, clients)


def homogeneous_config(delta: int, *, num_requests: int = REQUESTS,
                       channels: int = 1):
    """One scaled Figure-5 point: D5-shaped disks, uncached client."""
    return ExperimentConfig(
        disk_sizes=(50, 200, 250),
        delta=delta,
        cache_size=1,
        access_range=100,
        region_size=10,
        num_requests=num_requests,
        channels=channels,
        label=f"fig5 Δ={delta}" + (f" C={channels}" if channels > 1 else ""),
    )


def homogeneous_spec(delta: int, clients: int, *,
                     num_requests: int = REQUESTS,
                     engine: str = "fast",
                     channels: int = 1) -> PopulationSpec:
    """A homogeneous fleet of ``clients`` i.i.d. Figure-5 clients."""
    return PopulationSpec(
        name=f"bench-fig5-delta{delta}"
             + (f"-c{channels}" if channels > 1 else ""),
        base=homogeneous_config(delta, num_requests=num_requests,
                                channels=channels),
        seed=21,
        engine=engine,
        segments=(SegmentSpec("uniform", clients),),
    )


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without sched_getaffinity
        return os.cpu_count() or 1


def snapshots(result) -> str:
    blocks = {"overall": result.overall.snapshot()}
    for name, aggregate in result.segments.items():
        blocks[name] = aggregate.snapshot()
    return json.dumps(strip_wall_clock(blocks), sort_keys=True)


def run_scaling(sizes, jobs: int, num_requests: int = REQUESTS):
    """Serial and parallel arms at each fleet size, identity-checked."""
    rows = []
    for clients in sizes:
        spec = hetero_spec(clients, num_requests)

        started = perf_counter()
        serial = run_population(spec, jobs=1)
        serial_seconds = perf_counter() - started

        started = perf_counter()
        parallel = run_population(spec, jobs=jobs)
        parallel_seconds = perf_counter() - started

        assert snapshots(serial) == snapshots(parallel), (
            f"fleet of {clients}: parallel aggregates diverged"
        )
        rows.append({
            "clients": clients,
            "serial_wall_seconds": serial_seconds,
            "parallel_wall_seconds": parallel_seconds,
            "speedup": serial_seconds / parallel_seconds,
            "serial_clients_per_second": clients / serial_seconds,
            "parallel_clients_per_second": clients / parallel_seconds,
            "response_mean": serial.overall.response_means.mean,
            "fairness": serial.overall.fairness.jain,
        })
    return rows


def run_validation(delta: int, clients: int, reference_runs: int,
                   jobs: int, num_requests: int = REQUESTS):
    """One Δ point: homogeneous fleet vs independent single-client runs."""
    spec = homogeneous_spec(delta, clients, num_requests=num_requests)
    fleet = run_population(spec, jobs=jobs)
    stats = fleet.overall.response_means

    config = homogeneous_config(delta, num_requests=num_requests)
    references = [
        run_experiment(
            config.with_(seed=derive_seed(REFERENCE_SEED, index))
        ).mean_response_time
        for index in range(reference_runs)
    ]
    reference_mean = sum(references) / len(references)

    # Pooled per-client spread; both samples draw the same estimator.
    spread = stats.stddev
    tolerance = 4.0 * spread * math.sqrt(
        1.0 / reference_runs + 1.0 / clients
    )
    difference = abs(stats.mean - reference_mean)
    return {
        "delta": delta,
        "clients": clients,
        "reference_runs": reference_runs,
        "fleet_mean": stats.mean,
        "fleet_stddev": spread,
        "fleet_stderr": stats.stderr,
        "reference_mean": reference_mean,
        "difference": difference,
        "tolerance": tolerance,
        "within_sampling_error": difference <= tolerance,
    }


def run_batch_study(delta: int, clients: int, *,
                    num_requests: int = REQUESTS,
                    repeats: int = BATCH_REPEATS,
                    channels: int = 1,
                    min_speedup: float = MIN_BATCH_SPEEDUP):
    """The columnar batch engine vs the per-client path, one fleet.

    Both arms run single-threaded; the batch arm's wall time is the
    best of ``repeats`` (one fleet costs milliseconds, so repetition is
    cheap and filters scheduler noise).  Equivalence uses the same
    4-sigma sampling-error tolerance as the Figure-5 validation, with
    both samples of size ``clients``.  With ``channels > 1`` both arms
    simulate the C-row :class:`~repro.core.schedule.BroadcastProgram`
    — the scalar arm through ``_run_trace_multichannel``, the batch
    arm through the vectorized tuner and per-channel phase tables.
    """
    started = perf_counter()
    per_client = run_population(
        homogeneous_spec(delta, clients, num_requests=num_requests,
                         channels=channels), jobs=1
    )
    per_client_seconds = perf_counter() - started

    batch_spec = homogeneous_spec(delta, clients,
                                  num_requests=num_requests,
                                  engine="batch", channels=channels)
    batch_seconds = math.inf
    batch = None
    for _ in range(repeats):
        started = perf_counter()
        batch = run_population(batch_spec)
        batch_seconds = min(batch_seconds, perf_counter() - started)

    scalar_stats = per_client.overall.response_means
    batch_stats = batch.overall.response_means
    tolerance = 4.0 * scalar_stats.stddev * math.sqrt(2.0 / clients)
    difference = abs(batch_stats.mean - scalar_stats.mean)
    return {
        "delta": delta,
        "clients": clients,
        "channels": channels,
        "best_of": repeats,
        "per_client": {
            "wall_seconds": per_client_seconds,
            "clients_per_second": clients / per_client_seconds,
            "fleet_mean": scalar_stats.mean,
        },
        "columnar": {
            "wall_seconds": batch_seconds,
            "clients_per_second": clients / batch_seconds,
            "fleet_mean": batch_stats.mean,
        },
        "speedup": per_client_seconds / batch_seconds,
        "difference": difference,
        "tolerance": tolerance,
        "within_sampling_error": difference <= tolerance,
        "min_speedup_target": min_speedup,
    }


def build_report(scaling, validation, jobs, *, batch=None,
                 batch_multichannel=None):
    return {
        "schema": "repro.bench.population/1",
        "benchmark": "population fleet scaling + Figure-5 validation",
        "num_requests": REQUESTS,
        "host": {
            "usable_cores": usable_cores(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "jobs": jobs,
        "scaling": scaling,
        "validation": validation,
        "batch": batch,
        "batch_multichannel": batch_multichannel,
        "min_speedup_target": MIN_SPEEDUP,
        "target_applies": usable_cores() >= jobs,
        "identical_minus_wall_clock": True,
    }


def test_population_scaling_identical():
    """Pytest entry: tiny fleet, serial == parallel aggregates."""
    rows = run_scaling((20,), jobs=2, num_requests=150)
    assert rows[0]["clients"] == 20
    assert rows[0]["serial_wall_seconds"] > 0


def test_population_matches_single_client():
    """Pytest entry: a small homogeneous fleet sits near the reference."""
    row = run_validation(
        delta=1, clients=60, reference_runs=8, jobs=2, num_requests=150
    )
    assert row["within_sampling_error"], (
        f"fleet mean {row['fleet_mean']:.2f} vs reference "
        f"{row['reference_mean']:.2f} exceeds tolerance "
        f"{row['tolerance']:.2f}"
    )


def test_batch_engine_matches_per_client():
    """Pytest entry: tiny batch fleet within sampling error of scalar.

    The 100x speedup gate belongs to the full-scale ``main()`` run; at
    pytest scale only the equivalence contract is asserted.
    """
    row = run_batch_study(delta=1, clients=80, num_requests=150, repeats=2)
    assert row["within_sampling_error"], (
        f"batch mean {row['columnar']['fleet_mean']:.2f} vs per-client "
        f"{row['per_client']['fleet_mean']:.2f} exceeds tolerance "
        f"{row['tolerance']:.2f}"
    )
    assert row["speedup"] > 1.0


def test_multichannel_batch_engine_matches_per_client():
    """Pytest entry: tiny C=4 batch fleet within sampling error."""
    row = run_batch_study(delta=1, clients=80, num_requests=150,
                          repeats=2, channels=CHANNELS,
                          min_speedup=MIN_MULTICHANNEL_SPEEDUP)
    assert row["within_sampling_error"], (
        f"C={CHANNELS} batch mean {row['columnar']['fleet_mean']:.2f} vs "
        f"per-client {row['per_client']['fleet_mean']:.2f} exceeds "
        f"tolerance {row['tolerance']:.2f}"
    )
    assert row["speedup"] > 1.0


def main() -> int:
    cores = usable_cores()
    print(f"population bench: fleets {FLEET_SIZES} x {REQUESTS} requests, "
          f"jobs={JOBS}, usable cores={cores}")

    scaling = run_scaling(FLEET_SIZES, jobs=JOBS)
    for row in scaling:
        print(f"  {row['clients']:>5} clients: "
              f"serial {row['serial_wall_seconds']:.2f}s, "
              f"parallel {row['parallel_wall_seconds']:.2f}s "
              f"({row['speedup']:.2f}x, "
              f"{row['parallel_clients_per_second']:.0f} clients/s)")

    print(f"validation: {VALIDATION_CLIENTS}-client homogeneous fleets "
          f"vs {REFERENCE_RUNS} reference runs")
    validation = []
    for delta in (1, 3):
        row = run_validation(
            delta, VALIDATION_CLIENTS, REFERENCE_RUNS, jobs=JOBS
        )
        validation.append(row)
        print(f"  Δ={delta}: fleet {row['fleet_mean']:.2f} bu vs "
              f"reference {row['reference_mean']:.2f} bu "
              f"(|Δ|={row['difference']:.2f}, "
              f"tolerance {row['tolerance']:.2f}) -> "
              f"{'OK' if row['within_sampling_error'] else 'FAIL'}")

    print(f"batch engine: {VALIDATION_CLIENTS}-client homogeneous fleet, "
          f"columnar vs per-client (best of {BATCH_REPEATS})")
    batch = run_batch_study(delta=3, clients=VALIDATION_CLIENTS)
    print(f"  Δ=3: per-client {batch['per_client']['wall_seconds']:.2f}s "
          f"({batch['per_client']['clients_per_second']:.0f} clients/s), "
          f"batch {batch['columnar']['wall_seconds'] * 1000:.1f}ms "
          f"({batch['columnar']['clients_per_second']:.0f} clients/s) "
          f"-> {batch['speedup']:.0f}x, "
          f"|Δmean|={batch['difference']:.2f} "
          f"(tolerance {batch['tolerance']:.2f}) -> "
          f"{'OK' if batch['within_sampling_error'] else 'FAIL'}")

    print(f"batch engine, C={CHANNELS}: {VALIDATION_CLIENTS}-client "
          f"multi-channel fleet, columnar vs per-client "
          f"(best of {BATCH_REPEATS})")
    multichannel = run_batch_study(
        delta=3, clients=VALIDATION_CLIENTS, channels=CHANNELS,
        min_speedup=MIN_MULTICHANNEL_SPEEDUP,
    )
    print(f"  Δ=3 C={CHANNELS}: per-client "
          f"{multichannel['per_client']['wall_seconds']:.2f}s "
          f"({multichannel['per_client']['clients_per_second']:.0f} "
          f"clients/s), batch "
          f"{multichannel['columnar']['wall_seconds'] * 1000:.1f}ms "
          f"({multichannel['columnar']['clients_per_second']:.0f} "
          f"clients/s) -> {multichannel['speedup']:.0f}x, "
          f"|Δmean|={multichannel['difference']:.2f} "
          f"(tolerance {multichannel['tolerance']:.2f}) -> "
          f"{'OK' if multichannel['within_sampling_error'] else 'FAIL'}")

    report = build_report(scaling, validation, JOBS, batch=batch,
                          batch_multichannel=multichannel)
    out = Path(__file__).resolve().parent.parent / "BENCH_population.json"
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"  wrote {out}")

    failures = []
    if not batch["within_sampling_error"]:
        failures.append(
            f"batch fleet mean off by {batch['difference']:.2f} "
            f"(> {batch['tolerance']:.2f})"
        )
    if batch["speedup"] < MIN_BATCH_SPEEDUP:
        failures.append(
            f"batch speedup {batch['speedup']:.0f}x below the "
            f"{MIN_BATCH_SPEEDUP:.0f}x target"
        )
    if not multichannel["within_sampling_error"]:
        failures.append(
            f"C={CHANNELS} batch fleet mean off by "
            f"{multichannel['difference']:.2f} "
            f"(> {multichannel['tolerance']:.2f})"
        )
    if multichannel["speedup"] < MIN_MULTICHANNEL_SPEEDUP:
        failures.append(
            f"C={CHANNELS} batch speedup {multichannel['speedup']:.0f}x "
            f"below the {MIN_MULTICHANNEL_SPEEDUP:.0f}x target"
        )
    for row in validation:
        if not row["within_sampling_error"]:
            failures.append(
                f"Δ={row['delta']}: fleet mean off by "
                f"{row['difference']:.2f} (> {row['tolerance']:.2f})"
            )
    largest = scaling[-1]
    if cores >= JOBS and largest["speedup"] < MIN_SPEEDUP:
        failures.append(
            f"speedup {largest['speedup']:.2f}x at "
            f"{largest['clients']} clients below the "
            f"{MIN_SPEEDUP:.1f}x target on a {cores}-core host"
        )
    if cores < JOBS:
        print(f"  note: host exposes {cores} usable core(s); the "
              f"{MIN_SPEEDUP:.1f}x target needs >= {JOBS} — recorded "
              "numbers are for the artifact, not the gate")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
