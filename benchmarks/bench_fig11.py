"""Figure 11: access locations for P vs PIX (Noise=30%, Δ=3).

Expected shape (paper §5.4.1): P has the higher cache-hit rate, but PIX
obtains *fewer* pages from the slowest disk (and more from the fast
disks) — "a lower cache hit rate does not mean lower response times in
broadcast environments; the key is to reduce expected latency by caching
important pages that reside on the slower disks."
"""

from benchmarks.conftest import print_figure, run_once
from repro.experiments.figures import figure11


def test_figure11(benchmark, paper_scale, jobs):
    num_requests, seed = paper_scale
    data = run_once(benchmark, figure11, num_requests=num_requests,
                    seed=seed, jobs=jobs)
    print_figure(data)

    locations = dict(zip(data.x_values, range(len(data.x_values))))
    p = data.series["P"]
    pix = data.series["PIX"]

    # Each column distributes all accesses.
    assert abs(sum(p) - 1.0) < 1e-9
    assert abs(sum(pix) - 1.0) < 1e-9

    # P caches harder...
    assert p[locations["cache"]] >= pix[locations["cache"]]
    # ...but PIX avoids the slowest disk.
    assert pix[locations["disk3"]] < p[locations["disk3"]]
    # PIX takes more from the two fast disks combined.
    pix_fast = pix[locations["disk1"]] + pix[locations["disk2"]]
    p_fast = p[locations["disk1"]] + p[locations["disk2"]]
    assert pix_fast > p_fast
