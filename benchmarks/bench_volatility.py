"""Extension bench: volatile broadcast data and invalidation reports.

The §7 what-if, measured.  Pages update periodically (random phase);
the client either ignores updates (fast but increasingly stale) or
listens to an invalidation report every 1000 broadcast units and
discards named pages (fresh but paying re-fetch misses).

Expected shape:

* without reports, the stale-read fraction grows monotonically with
  volatility while response time is unaffected (staleness is free);
* with reports, staleness collapses to (at most) the report-window
  residue, but response time climbs with volatility — and at extreme
  volatility approaches the *no-cache* level for this broadcast, which
  is especially bad here because Offset=CacheSize shaped the broadcast
  assuming the hot pages stayed cached.  Consistency, latency, and
  broadcast shaping are coupled decisions.
"""

from benchmarks.conftest import bench_seed, print_figure, run_once
from repro.experiments.figures import volatility_study


def test_volatility(benchmark):
    data = run_once(benchmark, volatility_study, seed=bench_seed())
    print_figure(data)

    stale_without = data.series["stale frac (no reports)"]
    stale_with = data.series["stale frac (reports)"]
    response_without = data.series["response (no reports)"]
    response_with = data.series["response (reports)"]

    # x runs from the least to the most volatile setting.
    assert all(
        later >= earlier - 0.02
        for earlier, later in zip(stale_without, stale_without[1:])
    )
    assert stale_without[-1] > 0.5  # high volatility: mostly stale reads

    # Reports bound staleness to a small residue at every volatility.
    for with_reports, without in zip(stale_with, stale_without):
        assert with_reports < 0.05
        assert with_reports < without

    # Ignoring updates costs nothing in latency...
    assert max(response_without) - min(response_without) < 1e-6
    # ...while consistency costs latency, increasingly with volatility.
    assert all(
        w >= wo for w, wo in zip(response_with, response_without)
    )
    assert response_with[-1] > response_with[0]
